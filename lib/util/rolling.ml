let default_bounds =
  [|
    1e-6; 3.16e-6; 1e-5; 3.16e-5; 1e-4; 3.16e-4; 1e-3; 3.16e-3; 1e-2;
    3.16e-2; 1e-1; 3.16e-1; 1.0; 3.16; 10.0;
  |]

(* Same stub as {!Instrument.monotonic_ns}; redeclared here so the
   default-clock hot path is a direct unboxed call instead of an
   indirect boxed call through a stored closure. *)
external monotonic_ns : unit -> (int64[@unboxed])
  = "gossip_monotonic_ns" "gossip_monotonic_ns_unboxed"
[@@noalloc]

(* Slot [i] of the arrays below holds data for the absolute slot index
   [epoch.(i)] (monotonic time divided by [slot_ns]); since absolute
   indices map to array positions modulo [slots], a slot is stale —
   and recycled on the next write — exactly when its epoch no longer
   matches the index the current time maps there.  [counts] includes
   [add]s; the histogram buckets hold only [observe]d values, so
   quantiles and means are over values alone. *)
type t = {
  clock : unit -> int64;
  default_clock : bool;  (* take the direct [monotonic_ns] fast path *)
  slot_ns : int64;
  slot_ns_i : int;  (* the same value; slot indices use int division *)
  slots : int;
  bounds : float array;
  mu : Mutex.t;
  epoch : int array;
  counts : int array;
  sums : float array;
  lows : float array;
  highs : float array;
  buckets : int array array;
}

let create ?clock ?(bounds = default_bounds) ~slot_ns ~slots () =
  if slots < 1 then invalid_arg "Rolling.create: slots < 1";
  if Int64.compare slot_ns 1L < 0 then invalid_arg "Rolling.create: slot_ns < 1";
  let default_clock = clock = None in
  let clock = match clock with Some c -> c | None -> Instrument.now_ns in
  {
    clock;
    default_clock;
    slot_ns;
    slot_ns_i = Int64.to_int slot_ns;
    slots;
    bounds = Array.copy bounds;
    mu = Mutex.create ();
    epoch = Array.make slots (-1);
    counts = Array.make slots 0;
    sums = Array.make slots 0.0;
    lows = Array.make slots Float.infinity;
    highs = Array.make slots Float.neg_infinity;
    buckets = Array.init slots (fun _ -> Array.make (Array.length bounds + 1) 0);
  }

let now t = if t.default_clock then monotonic_ns () else t.clock ()
let abs_slot t = Int64.to_int (now t) / t.slot_ns_i

(* Caller holds [t.mu]. *)
let slot_for t abs =
  let i = abs mod t.slots in
  if t.epoch.(i) <> abs then begin
    t.epoch.(i) <- abs;
    t.counts.(i) <- 0;
    t.sums.(i) <- 0.0;
    t.lows.(i) <- Float.infinity;
    t.highs.(i) <- Float.neg_infinity;
    Array.fill t.buckets.(i) 0 (Array.length t.buckets.(i)) 0
  end;
  i

let bucket_of bounds v =
  let nb = Array.length bounds in
  let rec go i = if i >= nb || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe_at t ~now_ns v =
  let abs = Int64.to_int now_ns / t.slot_ns_i in
  Mutex.lock t.mu;
  let i = slot_for t abs in
  t.counts.(i) <- t.counts.(i) + 1;
  t.sums.(i) <- t.sums.(i) +. v;
  if v < t.lows.(i) then t.lows.(i) <- v;
  if v > t.highs.(i) then t.highs.(i) <- v;
  let b = bucket_of t.bounds v in
  t.buckets.(i).(b) <- t.buckets.(i).(b) + 1;
  Mutex.unlock t.mu

let observe t v = observe_at t ~now_ns:(now t) v

let add_at t ~now_ns k =
  let abs = Int64.to_int now_ns / t.slot_ns_i in
  Mutex.lock t.mu;
  let i = slot_for t abs in
  t.counts.(i) <- t.counts.(i) + k;
  Mutex.unlock t.mu

let add t k = add_at t ~now_ns:(now t) k

type snapshot = {
  window_s : float;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  bounds : float array;
  bucket_counts : int array;
}

let snapshot ?window t =
  let window =
    match window with None -> t.slots | Some w -> max 1 (min w t.slots)
  in
  let now_abs = abs_slot t in
  let oldest = now_abs - window + 1 in
  let acc_count = ref 0
  and acc_sum = ref 0.0
  and acc_lo = ref Float.infinity
  and acc_hi = ref Float.neg_infinity in
  let acc_buckets = Array.make (Array.length t.bounds + 1) 0 in
  Mutex.lock t.mu;
  for i = 0 to t.slots - 1 do
    if t.epoch.(i) >= oldest && t.epoch.(i) <= now_abs then begin
      acc_count := !acc_count + t.counts.(i);
      acc_sum := !acc_sum +. t.sums.(i);
      acc_lo := Float.min !acc_lo t.lows.(i);
      acc_hi := Float.max !acc_hi t.highs.(i);
      Array.iteri (fun b c -> acc_buckets.(b) <- acc_buckets.(b) + c) t.buckets.(i)
    end
  done;
  Mutex.unlock t.mu;
  {
    window_s = float_of_int window *. Int64.to_float t.slot_ns /. 1e9;
    count = !acc_count;
    sum = !acc_sum;
    min_v = !acc_lo;
    max_v = !acc_hi;
    bounds = t.bounds;
    bucket_counts = acc_buckets;
  }

let count ?window t = (snapshot ?window t).count

let rate s = if s.window_s <= 0.0 then Float.nan else float_of_int s.count /. s.window_s

let mean s =
  let values = Array.fold_left ( + ) 0 s.bucket_counts in
  if values = 0 then Float.nan else s.sum /. float_of_int values

(* Same estimator as {!Instrument.quantile}, on the merged buckets:
   interpolate inside the bucket holding the target rank, using the
   observed min as the floor of the first bucket and the observed max
   as the ceiling of the overflow bucket. *)
let quantile s q =
  let n = Array.fold_left ( + ) 0 s.bucket_counts in
  if n = 0 then Float.nan
  else begin
    let target = q *. float_of_int n in
    let nb = Array.length s.bounds in
    let rec go i cum =
      if i > nb then s.max_v
      else
        let c = s.bucket_counts.(i) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= target then begin
          let lo = if i = 0 then s.min_v else s.bounds.(i - 1) in
          let hi = if i = nb then s.max_v else s.bounds.(i) in
          let frac = (target -. cum) /. float_of_int c in
          Float.min s.max_v (Float.max s.min_v (lo +. ((hi -. lo) *. frac)))
        end
        else go (i + 1) cum'
    in
    go 0 0.0
  end
