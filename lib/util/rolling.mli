(** Fixed-slot sliding windows over counters and latency histograms.

    A rolling window divides time into [slots] consecutive slots of
    [slot_ns] nanoseconds each and keeps one accumulator per slot; an
    observation lands in the slot covering the current monotonic time,
    lazily recycling whatever stale slot occupied that array position.
    Reading merges the slots that fall inside the requested window, so a
    snapshot over the last [k] slots reflects roughly the last
    [k * slot_ns] nanoseconds of traffic — old observations age out
    slot by slot, with no background thread and no per-observation
    allocation.

    One window can serve several horizons: the serving layer keeps a
    single 300-slot window of 1-second slots per operation and snapshots
    it over the last 10 / 60 / 300 slots for its 10s / 1m / 5m metrics.

    Each window is protected by its own mutex, making observations from
    concurrent worker domains safe and cheap (the critical section is a
    handful of array writes).  The clock is injectable for tests;
    production windows run on {!Instrument.now_ns}. *)

type t

(** Half-decade latency buckets, 1 µs .. 10 s — the same edges as the
    {!Instrument} default, so rolling quantiles and lifetime quantiles
    are comparable. *)
val default_bounds : float array

(** [create ?clock ?bounds ~slot_ns ~slots ()] — an empty window of
    [slots] slots of [slot_ns] nanoseconds each.  [bounds] are the
    histogram bucket upper edges (default {!default_bounds});
    observations above the last edge land in an overflow bucket.
    [clock] (default {!Instrument.now_ns}) is read at every observation
    and snapshot.
    @raise Invalid_argument if [slots < 1] or [slot_ns < 1]. *)
val create :
  ?clock:(unit -> int64) ->
  ?bounds:float array ->
  slot_ns:int64 ->
  slots:int ->
  unit ->
  t

(** [observe t v] records value [v] (a latency in seconds, typically)
    into the current slot: count, sum, min/max and histogram bucket. *)
val observe : t -> float -> unit

(** [add t k] bumps the current slot's count by [k] without recording a
    value — a pure event counter (throughput, errors). *)
val add : t -> int -> unit

(** [observe_at t ~now_ns v] / [add_at t ~now_ns k] — as {!observe} /
    {!add} but with the clock sample supplied by the caller, so a hot
    path updating several windows per event pays for one clock read.
    [now_ns] must come from the same (monotonic) clock the window was
    created with. *)
val observe_at : t -> now_ns:int64 -> float -> unit

val add_at : t -> now_ns:int64 -> int -> unit

(** Merged view over the most recent slots.  [min_v] is [+inf] and
    [max_v] is [-inf] when [count = 0]. *)
type snapshot = {
  window_s : float;  (** seconds the merged slots span *)
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  bounds : float array;
  bucket_counts : int array;  (** one longer than [bounds]: overflow last *)
}

(** [snapshot ?window t] merges the slots whose time range intersects
    the last [window] slots (default: all of them), including the
    current partially-filled slot.  [window] is clamped to
    [\[1, slots\]]. *)
val snapshot : ?window:int -> t -> snapshot

(** [count ?window t] — just the merged count. *)
val count : ?window:int -> t -> int

(** [rate s] — [count /. window_s], events per second over the window. *)
val rate : snapshot -> float

(** [mean s] — [sum /. count]; NaN when empty. *)
val mean : snapshot -> float

(** [quantile s q] estimates the [q]-quantile by linear interpolation
    inside the bucket holding the target rank, clamped to the observed
    [min_v]/[max_v] (the same estimator as {!Instrument.quantile}).  NaN
    when empty, or when the window holds only [add]s (no values). *)
val quantile : snapshot -> float -> float
