type t = { trace_id : string; parent_span_id : string option; sampled : bool }

(* --- id minting --- *)

(* splitmix64: each draw advances a global counter by the golden-ratio
   increment and scrambles it through the finalizer.  The base is
   process-unique (pid ⊕ wall clock ⊕ monotonic clock), so two nodes
   started in the same microsecond still mint disjoint id streams; the
   atomic counter keeps concurrent domains disjoint within a process. *)

let golden = 0x9E3779B97F4A7C15L

let fmix64 v =
  let v = Int64.logxor v (Int64.shift_right_logical v 30) in
  let v = Int64.mul v 0xBF58476D1CE4E5B9L in
  let v = Int64.logxor v (Int64.shift_right_logical v 27) in
  let v = Int64.mul v 0x94D049BB133111EBL in
  Int64.logxor v (Int64.shift_right_logical v 31)

let base =
  let tod = Int64.bits_of_float (Unix.gettimeofday ()) in
  let mono = Instrument.now_ns () in
  fmix64
    (Int64.logxor
       (Int64.logxor tod (Int64.mul mono golden))
       (Int64.of_int (Unix.getpid () * 0x1000193)))

let counter = Atomic.make 0

let next64 () =
  let c = Atomic.fetch_and_add counter 1 in
  fmix64 (Int64.add base (Int64.mul (Int64.of_int (c + 1)) golden))

let hex16 v = Printf.sprintf "%016Lx" v

let fresh_span_id () = hex16 (next64 ())
let fresh_trace_id () = hex16 (next64 ()) ^ hex16 (next64 ())

(* --- head-based sampling --- *)

(* FNV-1a over the trace id bytes, avalanched through the same fmix64
   finalizer the cluster ring uses: bare FNV's low bits are too regular
   to compare against a threshold.  The decision is a pure function of
   the trace id, so every node holding the same context — router, each
   failover replica, the shard — reaches the same verdict without
   coordination. *)
let hash64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  fmix64 !h

let sample_decision ~rate trace_id =
  if rate >= 1.0 then true
  else if rate <= 0.0 then false
  else
    (* top 30 bits as a fraction of [0, 1): plenty of resolution for a
       sampling knob, and safely inside OCaml's int range *)
    let bits =
      Int64.to_int (Int64.shift_right_logical (hash64 trace_id) 34)
    in
    float_of_int bits /. 1073741824.0 < rate

let mint ?(sample_rate = 1.0) () =
  let trace_id = fresh_trace_id () in
  {
    trace_id;
    parent_span_id = None;
    sampled = sample_decision ~rate:sample_rate trace_id;
  }

let child t ~span_id = { t with parent_span_id = Some span_id }

(* --- telemetry attributes --- *)

let attrs t =
  ("trace_id", Json.Str t.trace_id)
  ::
  (match t.parent_span_id with
  | Some p -> [ ("parent_span_id", Json.Str p) ]
  | None -> [])
