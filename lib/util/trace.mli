(** Distributed trace context: W3C-traceparent-style identity that rides
    the serving wire protocol across process boundaries.

    A context is minted once at the edge of the fleet — the load
    generator or the router, wherever a request first enters — and then
    carried verbatim on every hop: the router copies it onto forwarded
    envelopes (re-parenting each hop under its own [router.forward]
    span), and each shard installs it as ambient {!Instrument}
    attributes so every span and event the request triggers shares one
    [trace_id] fleet-wide.  The offline stitcher
    ([Gossip_serve.Trace_analysis]) reassembles per-node JSONL traces
    into cross-node waterfalls by following [(trace_id,
    parent_span_id)] links.

    Sampling is {e head-based} and {e pure in the trace id}: the
    keep/drop verdict is a hash of [trace_id] compared against the
    rate, so every node holding the context reaches the same decision
    without coordination, and a trace is either recorded on all its
    hops or on none. *)

type t = {
  trace_id : string;  (** 32 hex chars; constant across all hops *)
  parent_span_id : string option;
      (** span id (16 hex chars) of the sender-side span that encloses
          this hop; [None] at the root of a trace *)
  sampled : bool;
      (** the head-based verdict; [false] means every node suppresses
          trace {e streaming} for this request (the work still runs) *)
}

(** [mint ?sample_rate ()] — a fresh root context: new [trace_id], no
    parent, [sampled] decided by {!sample_decision} at [sample_rate]
    (default 1.0 — keep everything). *)
val mint : ?sample_rate:float -> unit -> t

(** [child t ~span_id] — the context to put on an outgoing hop that is
    enclosed by the local span [span_id]: same trace, same verdict,
    re-parented. *)
val child : t -> span_id:string -> t

(** [fresh_trace_id ()] — 32 lowercase hex chars, unique across
    processes (seeded from pid and both clocks) and domains (atomic
    counter). *)
val fresh_trace_id : unit -> string

(** [fresh_span_id ()] — 16 lowercase hex chars from the same stream. *)
val fresh_span_id : unit -> string

(** [sample_decision ~rate trace_id] — the pure head-sampling verdict:
    [hash64 trace_id] as a fraction of [0, 1) compared against [rate].
    Total at [rate >= 1.0], empty at [rate <= 0.0], deterministic in
    between. *)
val sample_decision : rate:float -> string -> bool

(** [hash64 s] — FNV-1a with an fmix64 avalanche; the hash behind
    {!sample_decision}, exposed for tests. *)
val hash64 : string -> int64

(** [attrs t] — the context as telemetry attributes:
    [trace_id] and (when present) [parent_span_id]. *)
val attrs : t -> (string * Json.t) list
