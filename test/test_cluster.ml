(* lib/cluster: consistent-hash ring properties, membership merge
   precedence and failure detection, and seeded in-process convergence
   of the full gossip protocol — no sockets anywhere; the transport is
   an injected function and time an injected clock. *)

module Json = Gossip_util.Json
module Cluster = Gossip_cluster
module Ring = Cluster.Ring
module Membership = Cluster.Membership
module Router = Cluster.Router
module Serve = Gossip_serve
module Wire = Serve.Wire

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let keys n = List.init n (fun i -> Printf.sprintf "key-%d" i)

(* --- ring --- *)

let test_ring_balance () =
  let nodes = [ "s1"; "s2"; "s3"; "s4" ] in
  let ks = keys 10_000 in
  List.iter
    (fun vnodes ->
      let ring = Ring.create ~vnodes nodes in
      let counts = Hashtbl.create 8 in
      List.iter
        (fun k ->
          match Ring.lookup ring k with
          | None -> Alcotest.fail "lookup on a populated ring"
          | Some n ->
              Hashtbl.replace counts n
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
        ks;
      List.iter
        (fun n ->
          let c = Option.value ~default:0 (Hashtbl.find_opt counts n) in
          check_bool
            (Printf.sprintf "vnodes=%d: %s owns some keys" vnodes n)
            true (c > 0))
        nodes;
      (* at the default token count the split must be genuinely even:
         nobody below 10% or above 50% of a fair 25% share's space *)
      if vnodes >= 64 then
        List.iter
          (fun n ->
            let c = Option.value ~default:0 (Hashtbl.find_opt counts n) in
            check_bool
              (Printf.sprintf "vnodes=%d: %s within balance band (%d)" vnodes n
                 c)
              true
              (c > 1_500 && c < 4_000))
          nodes)
    [ 1; 2; 4; 16; 64 ]

let test_ring_minimal_movement () =
  let nodes = [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  let ks = keys 6_000 in
  let before = Ring.create ~vnodes:16 nodes in
  (* leave: only the departed node's keys move, and they were its *)
  let after_leave =
    Ring.create ~vnodes:16 (List.filter (fun n -> n <> "c") nodes)
  in
  let moved = Ring.moved ~before ~after:after_leave ks in
  List.iter
    (fun k ->
      check_string "a moved key belonged to the departed node" "c"
        (Option.value ~default:"?" (Ring.lookup before k)))
    moved;
  let bound = 2 * List.length ks / List.length nodes in
  check_bool
    (Printf.sprintf "leave moves ~K/n keys (moved %d <= %d)"
       (List.length moved) bound)
    true
    (List.length moved <= bound && moved <> []);
  (* join: every moved key lands on the newcomer *)
  let after_join = Ring.create ~vnodes:16 ("g" :: nodes) in
  let moved = Ring.moved ~before ~after:after_join ks in
  List.iter
    (fun k ->
      check_string "a moved key lands on the joining node" "g"
        (Option.value ~default:"?" (Ring.lookup after_join k)))
    moved;
  let bound = 2 * List.length ks / (1 + List.length nodes) in
  check_bool
    (Printf.sprintf "join moves ~K/(n+1) keys (moved %d <= %d)"
       (List.length moved) bound)
    true
    (List.length moved <= bound && moved <> [])

let test_ring_replicas () =
  let ring = Ring.create ~vnodes:8 [ "a"; "b"; "c"; "d"; "e" ] in
  List.iter
    (fun k ->
      let reps = Ring.replicas ring ~k:3 k in
      check_int "three distinct replicas" 3
        (List.length (List.sort_uniq compare reps));
      check_string "head is the lookup owner"
        (Option.value ~default:"?" (Ring.lookup ring k))
        (List.hd reps))
    (keys 200);
  (* k beyond the member count saturates at every node, still distinct *)
  let reps = Ring.replicas ring ~k:9 "some-key" in
  check_int "k > n yields all nodes" 5
    (List.length (List.sort_uniq compare reps))

let test_ring_determinism () =
  let r1 = Ring.create ~vnodes:16 [ "a"; "b"; "c" ] in
  let r2 = Ring.create ~vnodes:16 [ "c"; "a"; "b"; "a" ] in
  check_bool "node order and duplicates are irrelevant" true
    (Ring.nodes r1 = Ring.nodes r2);
  List.iter
    (fun k ->
      check_bool "placements agree" true (Ring.lookup r1 k = Ring.lookup r2 k))
    (keys 1_000);
  let empty = Ring.create ~vnodes:4 [] in
  check_bool "empty ring answers None" true (Ring.lookup empty "k" = None);
  check_int "empty ring has no replicas" 0
    (List.length (Ring.replicas empty ~k:2 "k"))

(* --- membership: merge precedence --- *)

let entry ?(addr = "") ?(role = "shard") ?(version = "t") ~inc ~hb status node
    =
  {
    Membership.node;
    addr;
    role;
    version;
    incarnation = inc;
    heartbeat = hb;
    status;
  }

let test_supersedes_table () =
  let open Membership in
  let cases =
    [
      (* (a, b, a supersedes b), freshness first *)
      (entry ~inc:2 ~hb:0 Alive "n", entry ~inc:1 ~hb:9 Dead "n", true);
      (entry ~inc:1 ~hb:5 Alive "n", entry ~inc:1 ~hb:4 Suspect "n", true);
      (entry ~inc:1 ~hb:4 Suspect "n", entry ~inc:1 ~hb:5 Alive "n", false);
      (* equal freshness: severity breaks the tie *)
      (entry ~inc:1 ~hb:3 Suspect "n", entry ~inc:1 ~hb:3 Alive "n", true);
      (entry ~inc:1 ~hb:3 Dead "n", entry ~inc:1 ~hb:3 Draining "n", true);
      (entry ~inc:1 ~hb:3 Alive "n", entry ~inc:1 ~hb:3 Dead "n", false);
      (* identical copies do not replace each other *)
      (entry ~inc:1 ~hb:3 Alive "n", entry ~inc:1 ~hb:3 Alive "n", false);
    ]
  in
  List.iteri
    (fun i (a, b, expect) ->
      check_bool (Printf.sprintf "case %d" i) expect (Membership.supersedes a b))
    cases

let fake_clock () =
  let t = ref 0L in
  ( (fun () -> !t),
    fun ms -> t := Int64.add !t (Int64.mul (Int64.of_int ms) 1_000_000L) )

let test_merge_refutation () =
  let clock, _advance = fake_clock () in
  let m =
    Membership.create ~self:"a" ~addr:"mem:a" ~role:"shard" ~version:"t"
      ~clock ~seed:1 ()
  in
  (* a rumor calls us suspect at a freshness we cannot beat *)
  ignore
    (Membership.merge m [ entry ~inc:1 ~hb:50 Membership.Suspect "a" ]);
  (match Membership.find m "a" with
  | Some e ->
      check_bool "self stays alive" true (e.Membership.status = Membership.Alive);
      check_bool "incarnation bumped past the rumor" true
        (e.Membership.incarnation >= 2)
  | None -> Alcotest.fail "self entry must exist");
  (* the refuted copy now dominates the rumor everywhere *)
  let refuted = Option.get (Membership.find m "a") in
  check_bool "refutation supersedes the rumor" true
    (Membership.supersedes refuted
       (entry ~inc:1 ~hb:50 Membership.Suspect "a"))

let test_merge_rumor_and_refresh () =
  let clock, _ = fake_clock () in
  let m =
    Membership.create ~self:"a" ~addr:"mem:a" ~role:"shard" ~version:"t"
      ~clock ~seed:1 ()
  in
  ignore (Membership.merge m [ entry ~inc:1 ~hb:3 Membership.Alive "b" ]);
  (* equal-freshness suspicion wins the severity tiebreak *)
  ignore (Membership.merge m [ entry ~inc:1 ~hb:3 Membership.Suspect "b" ]);
  check_bool "suspicion spread" true
    ((Option.get (Membership.find m "b")).Membership.status
    = Membership.Suspect);
  (* but any fresher heartbeat refutes it *)
  ignore (Membership.merge m [ entry ~inc:1 ~hb:4 Membership.Alive "b" ]);
  check_bool "fresher heartbeat refutes" true
    ((Option.get (Membership.find m "b")).Membership.status = Membership.Alive);
  (* merge reports 0 when nothing changes *)
  check_int "idempotent merge" 0
    (Membership.merge m [ entry ~inc:1 ~hb:4 Membership.Alive "b" ])

let test_suspicion_to_dead () =
  let clock, advance = fake_clock () in
  let m =
    Membership.create ~self:"a" ~addr:"mem:a" ~role:"shard" ~version:"t"
      ~clock ~seed:1 ~suspicion_timeout_ms:1_000 ~dead_timeout_ms:3_000 ()
  in
  ignore (Membership.merge m [ entry ~inc:1 ~hb:1 Membership.Alive "b" ]);
  let status () = (Option.get (Membership.find m "b")).Membership.status in
  advance 500;
  Membership.apply_timeouts m;
  check_bool "fresh peer stays alive" true (status () = Membership.Alive);
  advance 1_000;
  Membership.apply_timeouts m;
  check_bool "overdue peer becomes suspect" true (status () = Membership.Suspect);
  advance 2_000;
  Membership.apply_timeouts m;
  check_bool "long-overdue peer is dead" true (status () = Membership.Dead);
  (* the verdict kept the entry's own freshness, so the node itself can
     still refute with any newer heartbeat *)
  ignore (Membership.merge m [ entry ~inc:1 ~hb:2 Membership.Alive "b" ]);
  check_bool "newer heartbeat resurrects" true (status () = Membership.Alive);
  (* self is never suspected, however silent *)
  advance 60_000;
  Membership.apply_timeouts m;
  check_bool "self immune to timeouts" true
    ((Option.get (Membership.find m "a")).Membership.status = Membership.Alive)

let test_drain_dominates () =
  let clock, _ = fake_clock () in
  let m =
    Membership.create ~self:"b" ~addr:"mem:b" ~role:"shard" ~version:"t"
      ~clock ~seed:1 ()
  in
  let before = Option.get (Membership.find m "b") in
  Membership.start_drain m;
  Membership.start_drain m;
  let after = Option.get (Membership.find m "b") in
  check_bool "draining" true (after.Membership.status = Membership.Draining);
  check_int "incarnation bumped exactly once (idempotent)"
    (before.Membership.incarnation + 1)
    after.Membership.incarnation;
  check_bool "drain entry dominates the alive fleet copy" true
    (Membership.supersedes after before);
  (* a drain survives the drained node's own later heartbeats *)
  Membership.heartbeat m;
  check_bool "still draining after heartbeat" true
    ((Option.get (Membership.find m "b")).Membership.status
    = Membership.Draining)

let test_digest_stability () =
  let clock, _ = fake_clock () in
  let m =
    Membership.create ~self:"a" ~addr:"mem:a" ~role:"shard" ~version:"t"
      ~clock ~seed:1 ()
  in
  ignore (Membership.merge m [ entry ~inc:1 ~hb:3 Membership.Alive "b" ]);
  let d0 = Membership.digest m in
  Membership.heartbeat m;
  ignore (Membership.merge m [ entry ~inc:1 ~hb:9 Membership.Alive "b" ]);
  check_string "heartbeat churn keeps the digest" d0 (Membership.digest m);
  let g0 = Membership.generation m in
  Membership.heartbeat m;
  check_int "generation ignores heartbeats" g0 (Membership.generation m);
  ignore (Membership.merge m [ entry ~inc:1 ~hb:9 Membership.Suspect "b" ]);
  check_bool "status change moves the digest" true
    (Membership.digest m <> d0);
  check_bool "status change moves the generation" true
    (Membership.generation m > g0)

(* --- convergence: a 5-node in-process cluster, injected transport --- *)

(* Deterministic message-drop schedule: a little LCG, NOT the nodes' own
   Prng — the protocol's seeds stay untouched by the fault injector. *)
let dropper ~seed ~percent =
  let state = ref (seed land 0xFFFF) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod 100 < percent

let mk_cluster ~n ~clock ~suspicion_timeout_ms ~dead_timeout_ms =
  let name i = Printf.sprintf "n%d" (i + 1) in
  let addr i = "mem:" ^ name i in
  List.init n (fun i ->
      let seeds = if i = 0 then [ addr 1 ] else [ addr 0 ] in
      ( addr i,
        Membership.create ~self:(name i) ~addr:(addr i) ~role:"shard"
          ~version:"t" ~clock ~seed:(100 + i) ~fanout:2 ~suspicion_timeout_ms
          ~dead_timeout_ms ~seeds () ))

let converged members =
  match members with
  | [] -> true
  | (_, first) :: rest ->
      let d = Membership.digest first in
      List.length (Membership.entries first) = 5
      && List.for_all (fun (_, m) -> Membership.digest m = d) rest

(* Runs rounds until every node holds the identical 5-entry table;
   returns (rounds, final digest). *)
let run_until_converged ~drop_percent ~drop_seed ~max_rounds members ~advance =
  let alive = Hashtbl.create 8 in
  List.iter (fun (a, m) -> Hashtbl.replace alive a m) members;
  let drop = dropper ~seed:drop_seed ~percent:drop_percent in
  let call addr op =
    if drop () then Error "dropped"
    else
      match Hashtbl.find_opt alive addr with
      | None -> Error "no such node"
      | Some m -> Membership.handle m op
  in
  let rec go round =
    if converged members then (round, Membership.digest (snd (List.hd members)))
    else if round >= max_rounds then
      Alcotest.failf "no convergence after %d rounds" max_rounds
    else begin
      List.iter (fun (_, m) -> Membership.tick m ~call) members;
      advance 200;
      go (round + 1)
    end
  in
  go 0

let test_convergence_under_drops () =
  let clock, advance = fake_clock () in
  let members =
    mk_cluster ~n:5 ~clock ~suspicion_timeout_ms:600_000
      ~dead_timeout_ms:1_200_000
  in
  let rounds, _digest =
    run_until_converged ~drop_percent:30 ~drop_seed:7 ~max_rounds:40 members
      ~advance
  in
  (* push/pull rumor spreading closes in O(log n) rounds; 5 nodes with
     30% losses and fanout 2 has lots of slack below this ceiling *)
  check_bool
    (Printf.sprintf "converged within rumor-spreading bounds (%d rounds)"
       rounds)
    true (rounds <= 12);
  List.iter
    (fun (_, m) ->
      List.iter
        (fun (e : Membership.entry) ->
          check_bool "everyone alive in the converged view" true
            (e.Membership.status = Membership.Alive))
        (Membership.entries m))
    members

let test_convergence_deterministic () =
  let run () =
    let clock, advance = fake_clock () in
    let members =
      mk_cluster ~n:5 ~clock ~suspicion_timeout_ms:600_000
        ~dead_timeout_ms:1_200_000
    in
    run_until_converged ~drop_percent:30 ~drop_seed:42 ~max_rounds:40 members
      ~advance
  in
  let r1, d1 = run () in
  let r2, d2 = run () in
  check_int "same seed, same round count" r1 r2;
  check_string "same seed, same digest" d1 d2

let test_convergence_after_death () =
  let clock, advance = fake_clock () in
  let members =
    mk_cluster ~n:5 ~clock ~suspicion_timeout_ms:1_000 ~dead_timeout_ms:2_500
  in
  let alive = Hashtbl.create 8 in
  List.iter (fun (a, m) -> Hashtbl.replace alive a m) members;
  let call addr op =
    match Hashtbl.find_opt alive addr with
    | None -> Error "connection refused"
    | Some m -> Membership.handle m op
  in
  (* converge first (no drops; timeouts far away at 200 ms rounds) *)
  let rec settle r =
    if not (converged members) then begin
      if r > 40 then Alcotest.fail "no initial convergence";
      List.iter (fun (_, m) -> Membership.tick m ~call) members;
      advance 100;
      settle (r + 1)
    end
  in
  settle 0;
  (* n5 dies: unreachable and no longer ticking *)
  Hashtbl.remove alive "mem:n5";
  let survivors = List.filter (fun (a, _) -> a <> "mem:n5") members in
  let rec mourn r =
    let settled =
      List.for_all
        (fun (_, m) ->
          match Membership.find m "n5" with
          | Some e -> e.Membership.status = Membership.Dead
          | None -> false)
        survivors
    in
    if not settled then begin
      if r > 60 then Alcotest.fail "survivors never agreed on the death";
      List.iter (fun (_, m) -> Membership.tick m ~call) survivors;
      advance 200;
      mourn (r + 1)
    end
  in
  mourn 0;
  (* and their digests agree again — the tombstone is part of the view *)
  let d = Membership.digest (snd (List.hd survivors)) in
  List.iter
    (fun (_, m) -> check_string "survivor digests equal" d (Membership.digest m))
    survivors;
  List.iter
    (fun (_, m) ->
      List.iter
        (fun (e : Membership.entry) ->
          if e.Membership.node <> "n5" then
            check_bool "no false verdicts on survivors" true
              (e.Membership.status = Membership.Alive))
        (Membership.entries m))
    survivors

(* --- routing --- *)

let test_routing_key () =
  check_bool "ping has no key" true (Router.routing_key Wire.Ping = None);
  check_bool "metrics has no key" true (Router.routing_key Wire.Metrics = None);
  check_bool "sleep has no key" true
    (Router.routing_key (Wire.Sleep { ms = 5 }) = None);
  let tables = Wire.Tables { s_max = 8; ss = [ 3; 4 ] } in
  let k1 = Router.routing_key tables in
  let k2 = Router.routing_key (Wire.Tables { s_max = 8; ss = [ 3; 4 ] }) in
  check_bool "identical params, identical key" true (k1 = k2 && k1 <> None);
  let k3 = Router.routing_key (Wire.Tables { s_max = 9; ss = [ 3; 4 ] }) in
  check_bool "different params, different key" true (k1 <> k3);
  (* certify_faults is cache-keyed, so it routes by fingerprint too *)
  let cf ~seed =
    Wire.Certify_faults
      {
        family = "cycle";
        n = 12;
        k = 1;
        budget = 512;
        seed;
        degree = 2;
        full_duplex = false;
        harden = "augment";
        cap = 0;
      }
  in
  let kc1 = Router.routing_key (cf ~seed:1) in
  check_bool "certify_faults carries a key" true (kc1 <> None);
  check_bool "certify_faults key canonical" true
    (kc1 = Router.routing_key (cf ~seed:1));
  check_bool "certify_faults key separates seeds" true
    (kc1 <> Router.routing_key (cf ~seed:2));
  (* the key pins placement: same op always lands on the same shard *)
  let ring = Ring.create ~vnodes:16 [ "a"; "b"; "c" ] in
  match (k1, k2) with
  | Some a, Some b ->
      check_bool "stable placement" true (Ring.lookup ring a = Ring.lookup ring b)
  | _ -> Alcotest.fail "tables must carry a key"

let test_router_ring_excludes_unroutable () =
  let clock, _ = fake_clock () in
  let m =
    Membership.create ~self:"router" ~addr:"mem:r" ~role:"router" ~version:"t"
      ~clock ~seed:1 ()
  in
  ignore
    (Membership.merge m
       [
         entry ~addr:"mem:sa" ~inc:1 ~hb:1 Membership.Alive "sa";
         entry ~addr:"mem:sb" ~inc:1 ~hb:1 Membership.Draining "sb";
         entry ~addr:"mem:sc" ~inc:1 ~hb:1 Membership.Dead "sc";
         entry ~addr:"mem:sd" ~inc:1 ~hb:1 Membership.Suspect "sd";
       ]);
  let metrics = Serve.Metrics.create ~workers:1 ~queue_capacity:4 () in
  let router = Router.create ~membership:m ~metrics ~vnodes:8 ~replicas:2 () in
  (* alive and suspect route; draining and dead never do — the
     exclusion IS the drain *)
  check_bool "ring holds exactly the routable shards" true
    (Ring.nodes (Router.ring router) = [ "sa"; "sd" ]);
  (* the router itself is no shard *)
  check_bool "router not on its own ring" true
    (not (List.mem "router" (Ring.nodes (Router.ring router))))

let test_version_skew () =
  let e v n = entry ~version:v ~inc:1 ~hb:1 Membership.Alive n in
  check_int "uniform fleet has no skew" 0
    (Membership.version_skew [ e "1" "a"; e "1" "b"; e "1" "c" ]);
  check_int "one straggler, skew 1" 1
    (Membership.version_skew [ e "1" "a"; e "2" "b"; e "1" "c" ]);
  check_int "empty view has no skew" 0 (Membership.version_skew [])

(* --- client connect deadline (the fix this PR ships) --- *)

let test_connect_timeout_bounded () =
  (* 10.255.255.1:9 is unroutable from anywhere sane: the handshake
     black-holes, which is exactly what connect_timeout_ms bounds.  On
     hosts that answer with an immediate network error that is fine
     too — the property under test is "returns quickly", not how. *)
  let t0 = Unix.gettimeofday () in
  (match
     Serve.Client.connect ~connect_timeout_ms:300
       (Serve.Server.Tcp ("10.255.255.1", 9))
   with
  | client -> Serve.Client.close client
  | exception Unix.Unix_error _ -> ()
  | exception Sys_error _ -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool
    (Printf.sprintf "connect returned in %.0f ms" (elapsed *. 1000.0))
    true (elapsed < 2.0)

let test_connect_timeout_validated () =
  (match
     Serve.Resilient_client.connect
       ~policy:
         {
           Serve.Resilient_client.default_policy with
           Serve.Resilient_client.connect_timeout_ms = 0;
         }
       (Serve.Server.Unix_socket "/nonexistent.sock")
   with
  | exception Invalid_argument _ -> ()
  | exception _ -> Alcotest.fail "expected Invalid_argument"
  | _ -> Alcotest.fail "a zero connect timeout must be rejected");
  ()

let suite =
  [
    ("ring balance across vnode configs", `Quick, test_ring_balance);
    ("ring minimal movement on join/leave", `Quick, test_ring_minimal_movement);
    ("ring replicas distinct", `Quick, test_ring_replicas);
    ("ring deterministic + empty", `Quick, test_ring_determinism);
    ("membership supersedes table", `Quick, test_supersedes_table);
    ("membership self-refutation", `Quick, test_merge_refutation);
    ("membership rumor + refresh", `Quick, test_merge_rumor_and_refresh);
    ("membership suspicion to dead", `Quick, test_suspicion_to_dead);
    ("membership drain dominates", `Quick, test_drain_dominates);
    ("membership digest heartbeat-stable", `Quick, test_digest_stability);
    ("convergence under 30% drops", `Quick, test_convergence_under_drops);
    ("convergence deterministic by seed", `Quick, test_convergence_deterministic);
    ("convergence after a death", `Quick, test_convergence_after_death);
    ("routing key canonical", `Quick, test_routing_key);
    ("router ring excludes unroutable", `Quick, test_router_ring_excludes_unroutable);
    ("version skew gauge", `Quick, test_version_skew);
    ("client connect timeout bounded", `Quick, test_connect_timeout_bounded);
    ("connect timeout validated", `Quick, test_connect_timeout_validated);
  ]
