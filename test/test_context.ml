(* Tests for the shared memoizing analysis context: hit/miss accounting,
   fingerprint separation of equal-size inputs, LRU eviction, and — most
   importantly — that every context-served artifact is identical to its
   uncached computation. *)

module Context = Core.Context
module Analysis = Core.Analysis
module Families = Gossip_topology.Families
module Digraph = Gossip_topology.Digraph
module Metrics = Gossip_topology.Metrics
module Separator = Gossip_topology.Separator
module Protocol = Gossip_protocol.Protocol
module Systolic = Gossip_protocol.Systolic
module Builders = Gossip_protocol.Builders
module Engine = Gossip_simulate.Engine
module Delay_digraph = Gossip_delay.Delay_digraph
module Delay_matrix = Gossip_delay.Delay_matrix
module Certificate = Gossip_delay.Certificate
module General = Gossip_bounds.General
module Oracle = Gossip_bounds.Oracle
module Dense = Gossip_linalg.Dense

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let tiny_sys () = Builders.edge_coloring_half_duplex (Families.hypercube 3)

let test_norm_cache_hit () =
  let ctx = Context.create () in
  let dg = Delay_digraph.of_systolic (tiny_sys ()) ~length:8 in
  let a = Context.norm ctx dg 0.5 in
  let s1 = Context.stats ctx in
  check_int "first eval misses" 1 s1.Context.misses;
  check_int "no hit yet" 0 s1.Context.hits;
  let b = Context.norm ctx dg 0.5 in
  let s2 = Context.stats ctx in
  check_int "repeated eval hits" 1 s2.Context.hits;
  check_int "no extra miss" 1 s2.Context.misses;
  check "cached value bit-identical" true
    (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b));
  check "agrees with direct evaluation" true
    (a = Delay_matrix.norm_blockwise dg 0.5);
  ignore (Context.norm ctx dg 0.6);
  check_int "different lambda misses" 2 (Context.stats ctx).Context.misses

let test_distinct_graphs_no_collision () =
  (* Same name, same vertex and arc counts, different structure: the
     fingerprints must differ, so cached artifacts never cross over. *)
  let a = Digraph.make ~name:"G" 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let b = Digraph.make ~name:"G" 4 [ (0, 2); (2, 1); (1, 3); (3, 0) ] in
  check "same-shape fingerprints differ" true
    (Context.fingerprint a <> Context.fingerprint b);
  let ctx = Context.create () in
  check_int "diameter of a" (Metrics.diameter a) (Context.diameter ctx a);
  check_int "diameter of b" (Metrics.diameter b) (Context.diameter ctx b);
  let s = Context.stats ctx in
  check_int "both were misses" 2 s.Context.misses;
  check_int "no false hit" 0 s.Context.hits

let test_protocol_fingerprint_distinguishes () =
  let g = Families.hypercube 3 in
  let hd = Builders.edge_coloring_half_duplex g in
  let fd = Builders.edge_coloring_full_duplex g in
  check "mode enters the fingerprint" true
    (Context.protocol_fingerprint hd <> Context.protocol_fingerprint fd);
  check "fingerprint is reproducible" true
    (Context.protocol_fingerprint hd = Context.protocol_fingerprint hd)

let test_oracle_identical_with_and_without_ctx () =
  let ctx = Context.create () in
  List.iter
    (fun (g, mode, s) ->
      let plain = Oracle.lower_bounds g ~mode ~s in
      let cold = Context.lower_bounds ctx g ~mode ~s in
      let warm = Context.lower_bounds ctx g ~mode ~s in
      check "oracle identical with context" true (plain = cold);
      check "warm oracle identical" true (plain = warm))
    [
      (Families.hypercube 3, Protocol.Half_duplex, Some 4);
      (Families.de_bruijn 2 4, Protocol.Half_duplex, None);
      (Families.hypercube 3, Protocol.Full_duplex, Some 3);
      (Families.cycle 9, Protocol.Half_duplex, Some 2);
    ];
  check "diameters were served from cache" true
    ((Context.stats ctx).Context.hits > 0)

let test_certify_matches_plain () =
  let sys = tiny_sys () in
  let mode = Systolic.mode sys in
  let t =
    match Engine.gossip_time sys with
    | Some t -> t
    | None -> Alcotest.fail "tiny systolic protocol must complete"
  in
  let ctx = Context.create () in
  let dg = Context.delay_digraph ctx sys ~length:t in
  let plain =
    Certificate.certify (Delay_digraph.of_systolic sys ~length:t) ~mode
  in
  let cached = Context.certify ctx dg ~mode in
  check "certificate identical with context" true (plain = cached);
  (* The refinement sweep revisits the coarse winner's λ, so it must be
     served from the cache populated by the coarse pass. *)
  Context.reset_stats ctx;
  let refined = Context.certify ctx ~refine:true dg ~mode in
  check "refined bound no worse" true
    (refined.Certificate.bound >= cached.Certificate.bound);
  check "refine reused cached norm solves" true
    ((Context.stats ctx).Context.hits > 0)

let test_certify_systolic_matches_plain () =
  let sys = tiny_sys () in
  let ctx = Context.create () in
  let plain = Certificate.certify_systolic sys in
  let cold = Context.certify_systolic ctx sys in
  check "certify_systolic identical with context" true (plain = cold);
  Context.reset_stats ctx;
  let warm = Context.certify_systolic ctx sys in
  check "warm certify_systolic identical" true (cold = warm);
  let s = Context.stats ctx in
  check "warm run is all hits" true (s.Context.hits > 0 && s.Context.misses = 0)

let test_analysis_reports_identical () =
  let g = Families.hypercube 3 in
  let ctx = Context.create () in
  check "network report identical" true
    (Analysis.analyze_network g = Analysis.analyze_network ~ctx g);
  let sys = tiny_sys () in
  check "protocol report identical" true
    (Analysis.certify_protocol sys = Analysis.certify_protocol ~ctx sys)

let test_lambda_star_and_gossip_time () =
  let ctx = Context.create () in
  let hd = Context.lambda_star ctx ~mode:Protocol.Half_duplex 5 in
  check "matches General.lambda_star" true (hd = General.lambda_star 5);
  check "directed shares the half-duplex root" true
    (hd = Context.lambda_star ctx ~mode:Protocol.Directed 5);
  check "directed query was a hit" true ((Context.stats ctx).Context.hits >= 1);
  check "full-duplex root differs" true
    (Context.lambda_star ctx ~mode:Protocol.Full_duplex 5
    = General.lambda_star_fd 5);
  let sys = tiny_sys () in
  check "gossip_time matches engine" true
    (Context.gossip_time ctx sys = Engine.gossip_time sys);
  check "capped gossip_time matches engine" true
    (Context.gossip_time ctx ~cap:3 sys = Engine.gossip_time ~cap:3 sys)

let test_separator_and_vertex_block () =
  let ctx = Context.create () in
  let g = Families.hypercube 3 in
  let sep = Separator.custom ~alpha:1.0 ~ell:1.0 ~v1:[ 0 ] ~v2:[ 7 ] in
  let m = Context.separator_measure ctx g sep in
  check "measurement matches direct" true (m = Separator.measure g sep);
  check "repeated measurement identical" true
    (m = Context.separator_measure ctx g sep);
  let dg = Delay_digraph.of_systolic (tiny_sys ()) ~length:8 in
  let blk = Context.vertex_block ctx dg 0.5 0 in
  let direct = Delay_matrix.vertex_block dg 0.5 0 in
  check "block dims match" true
    (Dense.rows blk = Dense.rows direct && Dense.cols blk = Dense.cols direct);
  let same = ref true in
  for i = 0 to Dense.rows blk - 1 do
    for j = 0 to Dense.cols blk - 1 do
      if Dense.get blk i j <> Dense.get direct i j then same := false
    done
  done;
  check "block entries match" true !same

let test_lru_eviction () =
  let ctx = Context.create ~capacity:2 () in
  let dg = Delay_digraph.of_systolic (tiny_sys ()) ~length:8 in
  List.iter (fun l -> ignore (Context.norm ctx dg l)) [ 0.2; 0.3; 0.4; 0.5 ];
  let s = Context.stats ctx in
  check "capacity respected" true (s.Context.entries <= 2);
  check "evictions counted" true (s.Context.evictions >= 2);
  (* the cache now holds λ ∈ {0.4, 0.5}; 0.2 was evicted first *)
  Context.reset_stats ctx;
  ignore (Context.norm ctx dg 0.2);
  check_int "evicted entry recomputes" 1 (Context.stats ctx).Context.misses;
  ignore (Context.norm ctx dg 0.5);
  check_int "recent entry still hits" 1 (Context.stats ctx).Context.hits;
  Context.clear ctx;
  let s = Context.stats ctx in
  check "clear empties the store" true
    (s.Context.entries = 0 && s.Context.hits = 0 && s.Context.misses = 0)

let test_fault_certificate_cache () =
  let module Schedule = Gossip_protocol.Schedule in
  let module Certifier = Gossip_simulate.Certifier in
  let module J = Gossip_util.Json in
  let ctx = Context.create () in
  let sched = Schedule.cycle_alternating ~n:12 ~full_duplex:false in
  let fingerprint = Certifier.fingerprint sched in
  let computes = ref 0 in
  let compute () =
    incr computes;
    Certifier.to_json sched
      (Certifier.certify ~domains:1 ~budget:64 sched ~k:1 ~seed:7)
  in
  let get () =
    Context.fault_certificate ctx ~fingerprint ~k:1 ~seed:7 ~budget:64 ~cap:(-1)
      ~compute
  in
  let a = get () in
  let b = get () in
  check_int "computed once" 1 !computes;
  check "second call served from cache" true (a == b);
  (match List.assoc_opt "fault_cert" (Context.stats_by_kind ctx) with
  | Some k ->
      check_int "fault_cert hit" 1 k.Context.k_hits;
      check_int "fault_cert miss" 1 k.Context.k_misses;
      check_int "fault_cert entry" 1 k.Context.k_entries
  | None -> Alcotest.fail "no fault_cert shelf in stats_by_kind");
  (* a different key (explicit cap) recomputes *)
  ignore
    (Context.fault_certificate ctx ~fingerprint ~k:1 ~seed:7 ~budget:64 ~cap:40
       ~compute);
  check_int "distinct cap is a distinct key" 2 !computes

let test_create_validation () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Context.create: capacity < 1") (fun () ->
      ignore (Context.create ~capacity:0 ()));
  let ctx = Context.create ~domains:2 () in
  check "domains recorded" true (Context.domains ctx = Some 2);
  check "no domains by default" true
    (Context.domains (Context.create ()) = None)

let test_stats_by_kind () =
  let ctx = Context.create () in
  let g = Families.hypercube 3 in
  ignore (Context.diameter ctx g);
  ignore (Context.diameter ctx g);
  let by_kind = Context.stats_by_kind ctx in
  (match List.assoc_opt "diameter" by_kind with
  | Some k ->
      check_int "diameter hits" 1 k.Context.k_hits;
      check_int "diameter misses" 1 k.Context.k_misses;
      check_int "diameter entries" 1 k.Context.k_entries
  | None -> Alcotest.fail "no diameter shelf in stats_by_kind");
  (* untouched shelves report zeros, and the per-kind rows sum to the
     global counters *)
  (match List.assoc_opt "norm" by_kind with
  | Some k ->
      check_int "norm untouched" 0 (k.Context.k_hits + k.Context.k_misses)
  | None -> Alcotest.fail "no norm shelf in stats_by_kind");
  let s = Context.stats ctx in
  let sum f = List.fold_left (fun a (_, k) -> a + f k) 0 by_kind in
  check_int "kind hits sum to total" s.Context.hits
    (sum (fun k -> k.Context.k_hits));
  check_int "kind misses sum to total" s.Context.misses
    (sum (fun k -> k.Context.k_misses));
  (* the JSON snapshot carries the same breakdown *)
  let module J = Gossip_util.Json in
  let j = Context.stats_json ctx in
  let dig path j =
    List.fold_left
      (fun acc k -> Option.bind acc (J.member k))
      (Some j) path
  in
  check "stats_json by_kind diameter hits" true
    (dig [ "by_kind"; "diameter"; "hits" ] j = Some (J.Int 1));
  check "stats_json by_kind diameter misses" true
    (dig [ "by_kind"; "diameter"; "misses" ] j = Some (J.Int 1))

let suite =
  [
    ("norm cache hit on repeated lambda", `Quick, test_norm_cache_hit);
    ("stats by kind", `Quick, test_stats_by_kind);
    ("equal-size graphs do not collide", `Quick,
      test_distinct_graphs_no_collision);
    ("protocol fingerprint distinguishes", `Quick,
      test_protocol_fingerprint_distinguishes);
    ("oracle identical with/without ctx", `Quick,
      test_oracle_identical_with_and_without_ctx);
    ("certify matches plain", `Quick, test_certify_matches_plain);
    ("certify_systolic matches plain", `Quick,
      test_certify_systolic_matches_plain);
    ("analysis reports identical", `Quick, test_analysis_reports_identical);
    ("lambda_star and gossip_time", `Quick, test_lambda_star_and_gossip_time);
    ("separator and vertex block", `Quick, test_separator_and_vertex_block);
    ("lru eviction", `Quick, test_lru_eviction);
    ("fault certificate cache", `Quick, test_fault_certificate_cache);
    ("create validation", `Quick, test_create_validation);
  ]
