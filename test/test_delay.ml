(* Tests for Gossip_delay: the delay digraph (Def. 3.3), the delay matrix
   (Def. 3.4), the local matrices and the semi-eigenvector of Lemma 4.2,
   the closed-form norm bounds (Lemmas 4.3 and 6.1), and the executable
   Theorem 4.1 certificates.  These property tests replay the paper's
   proofs numerically on randomly generated systolic protocols. *)

open Gossip_topology
open Gossip_protocol
open Gossip_delay
module Dense = Gossip_linalg.Dense
module Spectral = Gossip_linalg.Spectral
module Numeric = Gossip_util.Numeric

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- delay digraph structure --- *)

let tiny_systolic () =
  (* path 0-1-2, period 3: (0->1), (1->2), (2->1) *)
  let g = Families.path 3 in
  Systolic.make g Protocol.Half_duplex [ [ (0, 1) ]; [ (1, 2) ]; [ (2, 1) ] ]

let test_delay_digraph_counts () =
  let dg = Delay_digraph.of_systolic (tiny_systolic ()) ~length:6 in
  check_int "activations = 6 rounds x 1 arc" 6 (Delay_digraph.n_activations dg);
  check_int "window" 3 (Delay_digraph.window dg);
  check_int "protocol length" 6 (Delay_digraph.protocol_length dg);
  (* arcs: (0,1,r) -> (1,2,r') with 1 <= r'-r < 3, etc. *)
  check "has (0,1,0)->(1,2,1)" true
    (let a = Option.get (Delay_digraph.find dg ~src:0 ~dst:1 ~round:0) in
     let b = Option.get (Delay_digraph.find dg ~src:1 ~dst:2 ~round:1) in
     let found = ref false in
     Delay_digraph.iter_arcs
       (fun ~tail ~head ~delay ->
         if tail = a && head = b && delay = 1 then found := true)
       dg;
     !found)

let test_delay_digraph_window_respected () =
  let dg = Delay_digraph.of_systolic (tiny_systolic ()) ~length:9 in
  let ok = ref true in
  Delay_digraph.iter_arcs
    (fun ~tail ~head ~delay ->
      let a = Delay_digraph.activation dg tail in
      let b = Delay_digraph.activation dg head in
      if delay < 1 || delay >= Delay_digraph.window dg then ok := false;
      if b.Delay_digraph.round - a.Delay_digraph.round <> delay then ok := false;
      (* consecutive arcs share the middle vertex *)
      if a.Delay_digraph.dst <> b.Delay_digraph.src then ok := false)
    dg;
  check "arcs well-formed" true !ok

let test_delay_digraph_in_out () =
  let dg = Delay_digraph.of_systolic (tiny_systolic ()) ~length:6 in
  check_int "ins of vertex 1 (from 0->1 and 2->1)" 4
    (Array.length (Delay_digraph.activations_in dg 1));
  check_int "outs of vertex 1 (1->2)" 2
    (Array.length (Delay_digraph.activations_out dg 1))

let test_delay_distances_telescope () =
  let dg = Delay_digraph.of_systolic (tiny_systolic ()) ~length:9 in
  let k = Option.get (Delay_digraph.find dg ~src:0 ~dst:1 ~round:0) in
  let dist = Delay_digraph.distances_from dg k in
  let ok = ref true in
  Array.iteri
    (fun j d ->
      if d <> max_int then begin
        let b = Delay_digraph.activation dg j in
        let a = Delay_digraph.activation dg k in
        if j <> k && d <> b.Delay_digraph.round - a.Delay_digraph.round then
          ok := false
      end)
    dist;
  check "dipath weights telescope to round difference" true !ok

let test_window_validation () =
  let g = Families.path 3 in
  let p = Protocol.make g Protocol.Half_duplex [ [ (0, 1) ] ] in
  Alcotest.check_raises "window < 2"
    (Invalid_argument "Delay_digraph.build: window must be >= 2") (fun () ->
      ignore (Delay_digraph.build p ~window:1))

(* --- delay matrix --- *)

let test_delay_matrix_entries () =
  let dg = Delay_digraph.of_systolic (tiny_systolic ()) ~length:6 in
  let m = Delay_matrix.sparse dg 0.5 in
  let a = Option.get (Delay_digraph.find dg ~src:0 ~dst:1 ~round:0) in
  let b = Option.get (Delay_digraph.find dg ~src:1 ~dst:2 ~round:1) in
  check "entry = lambda^delay" true
    (Gossip_linalg.Sparse.get m a b = 0.5);
  check "max row nnz <= window - 1 per out-arc family" true
    (Gossip_linalg.Sparse.max_row_nnz m <= 4)

let test_delay_matrix_lambda_validation () =
  let dg = Delay_digraph.of_systolic (tiny_systolic ()) ~length:3 in
  Alcotest.check_raises "lambda = 1 rejected"
    (Invalid_argument "Delay_matrix: lambda must be in (0, 1)") (fun () ->
      ignore (Delay_matrix.sparse dg 1.0))

let test_norm_equals_blockwise () =
  let sys =
    Builders.random_systolic (Families.de_bruijn 2 4) Protocol.Half_duplex
      ~period:5 ~seed:2 ~density:0.9
  in
  let dg = Delay_digraph.of_systolic sys ~length:20 in
  List.iter
    (fun lambda ->
      let a = Delay_matrix.norm dg lambda in
      let b = Delay_matrix.norm_blockwise dg lambda in
      check
        (Printf.sprintf "global = blockwise at lambda=%.2f" lambda)
        true
        (Numeric.approx_equal ~eps:1e-6 a b))
    [ 0.3; 0.6; 0.8 ]

(* The parallel blockwise norm takes a per-vertex max of independently
   computed block norms, so the worker count must not change even the
   last bit of the result. *)
let test_norm_blockwise_parallel_bitwise () =
  let sys =
    Builders.random_systolic (Families.de_bruijn 2 4) Protocol.Half_duplex
      ~period:5 ~seed:2 ~density:0.9
  in
  let dg = Delay_digraph.of_systolic sys ~length:20 in
  List.iter
    (fun lambda ->
      let seq = Delay_matrix.norm_blockwise ~domains:1 dg lambda in
      List.iter
        (fun domains ->
          let par = Delay_matrix.norm_blockwise ~domains dg lambda in
          check
            (Printf.sprintf "bit-identical at lambda=%.2f domains=%d" lambda
               domains)
            true
            (Int64.equal (Int64.bits_of_float seq) (Int64.bits_of_float par)))
        [ 2; 4 ])
    [ 0.3; 0.6; 0.8 ]

(* Lemma 4.3 / 6.1: ‖M(λ)‖ <= closed form, for random protocols in every
   mode. *)
let prop_norm_bound_half_duplex =
  QCheck.Test.make ~name:"Lemma 4.3: ‖M(λ)‖ <= λ√p⌈s/2⌉√p⌊s/2⌋ (half-duplex)"
    ~count:60
    QCheck.(
      triple (int_range 0 100_000) (int_range 3 8) (float_range 0.1 0.9))
    (fun (seed, s, lambda) ->
      let g = Families.de_bruijn 2 3 in
      let sys =
        Builders.random_systolic g Protocol.Half_duplex ~period:s ~seed
          ~density:1.0
      in
      let dg = Delay_digraph.of_systolic sys ~length:(3 * s) in
      let nu = Delay_matrix.norm_blockwise dg lambda in
      let cf =
        Delay_matrix.closed_form_bound ~mode:Protocol.Half_duplex ~window:s
          lambda
      in
      nu <= cf +. 1e-7)

let prop_norm_bound_directed =
  QCheck.Test.make ~name:"Lemma 4.3 holds on directed networks" ~count:60
    QCheck.(
      triple (int_range 0 100_000) (int_range 3 7) (float_range 0.1 0.9))
    (fun (seed, s, lambda) ->
      let g = Families.kautz_directed 2 3 in
      let sys =
        Builders.random_systolic g Protocol.Directed ~period:s ~seed
          ~density:1.0
      in
      let dg = Delay_digraph.of_systolic sys ~length:(3 * s) in
      Delay_matrix.norm_blockwise dg lambda
      <= Delay_matrix.closed_form_bound ~mode:Protocol.Directed ~window:s
           lambda
         +. 1e-7)

let prop_norm_bound_full_duplex =
  QCheck.Test.make ~name:"Lemma 6.1: ‖M(λ)‖ <= λ+...+λ^(s-1) (full-duplex)"
    ~count:60
    QCheck.(
      triple (int_range 0 100_000) (int_range 3 7) (float_range 0.1 0.9))
    (fun (seed, s, lambda) ->
      let g = Families.hypercube 3 in
      let sys =
        Builders.random_systolic g Protocol.Full_duplex ~period:s ~seed
          ~density:1.0
      in
      let dg = Delay_digraph.of_systolic sys ~length:(3 * s) in
      Delay_matrix.norm_blockwise dg lambda
      <= Delay_matrix.closed_form_bound ~mode:Protocol.Full_duplex ~window:s
           lambda
         +. 1e-7)

(* Definition 3.4's "key property": (M(λ)^t)_{a,b} = Σ over t-arc dipaths
   of λ^(total weight).  Checked by explicit DFS path enumeration. *)
let test_key_property_path_counting () =
  let dg = Delay_digraph.of_systolic (tiny_systolic ()) ~length:9 in
  let lambda = 0.5 in
  let m = Delay_matrix.sparse dg lambda in
  let dm = Gossip_linalg.Sparse.to_dense m in
  let count = Delay_digraph.n_activations dg in
  (* adjacency with delays *)
  let succs = Array.make count [] in
  Delay_digraph.iter_arcs
    (fun ~tail ~head ~delay -> succs.(tail) <- (head, delay) :: succs.(tail))
    dg;
  let rec paths_sum a b k =
    (* sum of lambda^weight over k-arc dipaths a -> b *)
    if k = 0 then if a = b then 1.0 else 0.0
    else
      List.fold_left
        (fun acc (next, delay) ->
          acc +. ((lambda ** float_of_int delay) *. paths_sum next b (k - 1)))
        0.0 succs.(a)
  in
  let ok = ref true in
  List.iter
    (fun k ->
      let mk = ref (Dense.identity count) in
      for _ = 1 to k do
        mk := Dense.mul !mk dm
      done;
      for a = 0 to count - 1 do
        for b = 0 to count - 1 do
          if
            not
              (Numeric.approx_equal ~eps:1e-10 (Dense.get !mk a b)
                 (paths_sum a b k))
          then ok := false
        done
      done)
    [ 1; 2; 3 ];
  check "(M^k)_{a,b} = sum of lambda^weight over k-arc dipaths" true !ok

(* --- local matrices --- *)

let test_pattern_construction () =
  let p = Local_matrix.make_pattern ~l:[| 2; 1 |] ~r:[| 1; 2 |] in
  check_int "blocks" 2 (Local_matrix.blocks p);
  check_int "period" 6 (Local_matrix.period p);
  check "accessors copy" true
    (Local_matrix.l p = [| 2; 1 |] && Local_matrix.r p = [| 1; 2 |]);
  Alcotest.check_raises "zero block"
    (Invalid_argument "Local_matrix.make_pattern: blocks must be positive")
    (fun () -> ignore (Local_matrix.make_pattern ~l:[| 0 |] ~r:[| 1 |]))

let test_d_values () =
  let p = Local_matrix.make_pattern ~l:[| 1; 1 |] ~r:[| 1; 1 |] in
  (* s = 4, d_{i,i} = 1, d_{i,i+1} = 1 + r_i + l_{i+1} = 3 *)
  check_int "d_ii" 1 (Local_matrix.d p ~i:0 ~j:0);
  check_int "d_01" 3 (Local_matrix.d p ~i:0 ~j:1);
  check_int "d_02" 5 (Local_matrix.d p ~i:0 ~j:2)

let test_mx_structure () =
  (* Fig. 1 setup: k = 2 pattern, h = 3 repetitions *)
  let p = Local_matrix.make_pattern ~l:[| 1; 2 |] ~r:[| 2; 1 |] in
  let lambda = 0.5 in
  let m = Local_matrix.mx p ~h:4 ~lambda in
  check_int "rows = h blocks of l" (1 + 2 + 1 + 2) (Dense.rows m);
  check_int "cols = h blocks of r" (2 + 1 + 2 + 1) (Dense.cols m);
  (* first row, first col: d_{0,0} = 1 -> lambda^1 *)
  check "B00 top-left = lambda" true (Dense.get m 0 0 = lambda);
  check "B00 top-right = lambda^2 (within-block round order)" true
    (Dense.get m 0 1 = lambda ** 2.0);
  (* block (1,0) is zero: right block 0 precedes left block 1 *)
  check "lower blocks zero" true (Dense.get m 1 0 = 0.0);
  check "nonneg" true (Dense.nonneg m)

let test_mx_delays_below_period () =
  (* every nonzero entry of Mx is lambda^delta with 1 <= delta <= s-1 *)
  let p = Local_matrix.make_pattern ~l:[| 2; 1 |] ~r:[| 1; 3 |] in
  let lambda = 0.5 in
  let s = Local_matrix.period p in
  let m = Local_matrix.mx p ~h:5 ~lambda in
  let ok = ref true in
  for i = 0 to Dense.rows m - 1 do
    for j = 0 to Dense.cols m - 1 do
      let v = Dense.get m i j in
      if v > 0.0 then begin
        let delta = log v /. log lambda in
        let rounded = Float.round delta in
        if Float.abs (delta -. rounded) > 1e-9 then ok := false;
        let di = int_of_float rounded in
        if di < 1 || di > s - 1 then ok := false
      end
    done
  done;
  check "all delays in [1, s-1]" true !ok

let test_lemma_2_2_route () =
  (* ‖Mx‖ computed directly equals sqrt(rho(Ox·Nx)) (Lemma 2.2) *)
  List.iter
    (fun (l, r, lambda) ->
      let p = Local_matrix.make_pattern ~l ~r in
      let h = 3 * Local_matrix.blocks p in
      let mx = Local_matrix.mx p ~h ~lambda in
      let on = Dense.mul (Local_matrix.ox p ~h ~lambda) (Local_matrix.nx p ~h ~lambda) in
      let direct = Spectral.norm2_dense mx in
      let reduced = sqrt (Spectral.spectral_radius_nonneg on) in
      check
        (Printf.sprintf "‖Mx‖ = sqrt(rho(OxNx)) for s=%d" (Local_matrix.period p))
        true
        (Numeric.approx_equal ~eps:1e-6 direct reduced))
    [
      ([| 1 |], [| 1 |], 0.6);
      ([| 2; 1 |], [| 1; 2 |], 0.5);
      ([| 1; 2; 1 |], [| 2; 1; 1 |], 0.55);
      ([| 3 |], [| 2 |], 0.7);
    ]

let test_lemma_4_2_semi_eigenvector () =
  List.iter
    (fun (l, r, lambda) ->
      let p = Local_matrix.make_pattern ~l ~r in
      let h = 4 * Local_matrix.blocks p in
      let e = Local_matrix.semi_eigenvector p ~h ~lambda in
      check "e strictly positive" true (Array.for_all (fun x -> x > 0.0) e);
      let nxm = Local_matrix.nx p ~h ~lambda in
      let oxm = Local_matrix.ox p ~h ~lambda in
      check "Nx e <= (λ p_R) e" true
        (Spectral.is_semi_eigenvector nxm e
           (Local_matrix.nx_semi_eigenvalue p lambda));
      check "Ox e <= (λ p_L) e" true
        (Spectral.is_semi_eigenvector oxm e
           (Local_matrix.ox_semi_eigenvalue p lambda)))
    [
      ([| 1; 1 |], [| 1; 1 |], 0.6);
      ([| 2; 1 |], [| 1; 2 |], 0.5);
      ([| 1; 3 |], [| 2; 2 |], 0.4);
    ]

(* Lemma 4.3 at the local level for random patterns. *)
let gen_pattern =
  QCheck.Gen.(
    int_range 1 3 >>= fun k ->
    array_size (return k) (int_range 1 3) >>= fun l ->
    array_size (return k) (int_range 1 3) >>= fun r ->
    return (l, r))

let prop_local_norm_bound =
  QCheck.Test.make ~name:"Lemma 4.3 locally: ‖Mx‖ <= λ√p⌈s/2⌉√p⌊s/2⌋"
    ~count:100
    QCheck.(pair (make gen_pattern) (float_range 0.1 0.9))
    (fun ((l, r), lambda) ->
      let p = Local_matrix.make_pattern ~l ~r in
      let s = Local_matrix.period p in
      let h = 3 * Local_matrix.blocks p in
      let mx = Local_matrix.mx p ~h ~lambda in
      let nrm = Spectral.norm2_dense mx in
      let hi = (s + 1) / 2 and lo = s / 2 in
      let cf =
        lambda
        *. sqrt (Gossip_linalg.Poly.delay_eval hi lambda)
        *. sqrt (Gossip_linalg.Poly.delay_eval lo lambda)
      in
      nrm <= cf +. 1e-7)

(* The norm of Mx grows with h but stays below the closed form — check
   stability as h increases. *)
let test_mx_norm_monotone_in_h () =
  let p = Local_matrix.make_pattern ~l:[| 1; 2 |] ~r:[| 2; 1 |] in
  let lambda = 0.6 in
  let norms =
    List.map
      (fun h -> Spectral.norm2_dense (Local_matrix.mx p ~h ~lambda))
      [ 2; 4; 8; 16 ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && increasing rest
    | _ -> true
  in
  check "norm monotone in h" true (increasing norms);
  let s = Local_matrix.period p in
  let cf =
    Delay_matrix.closed_form_bound ~mode:Protocol.Half_duplex ~window:s lambda
  in
  check "all below closed form" true
    (List.for_all (fun x -> x <= cf +. 1e-7) norms)

let test_of_activation_pattern () =
  (* L R L R rounds *)
  let p = Option.get (Local_matrix.of_activation_pattern [| `L; `R; `L; `R |]) in
  check "two unit blocks" true
    (Local_matrix.l p = [| 1; 1 |] && Local_matrix.r p = [| 1; 1 |]);
  (* rotation: starts mid-block *)
  let p2 = Option.get (Local_matrix.of_activation_pattern [| `R; `L; `L; `R |]) in
  check "rotated to L-start" true
    (Local_matrix.l p2 = [| 2 |] && Local_matrix.r p2 = [| 2 |]);
  (* idle completion *)
  let p3 = Option.get (Local_matrix.of_activation_pattern [| `L; `Idle; `R; `Idle |]) in
  check "idle extends previous block" true
    (Local_matrix.period p3 = 4);
  (* degenerate cases *)
  check "all L -> None" true (Local_matrix.of_activation_pattern [| `L; `L |] = None);
  check "both -> None" true (Local_matrix.of_activation_pattern [| `Both |] = None);
  check "empty -> None" true (Local_matrix.of_activation_pattern [||] = None)

let test_full_duplex_local () =
  let m = Local_matrix.full_duplex_local ~window:4 ~rounds:6 ~lambda:0.5 in
  check_int "square" 6 (Dense.rows m);
  check "banded structure" true
    (Dense.get m 0 1 = 0.5
    && Dense.get m 0 3 = 0.125
    && Dense.get m 0 4 = 0.0
    && Dense.get m 1 0 = 0.0);
  (* Lemma 6.1: ‖Mx‖ <= λ + λ² + λ³ *)
  let nrm = Spectral.norm2_dense m in
  check "full-duplex norm bound" true (nrm <= 0.5 +. 0.25 +. 0.125 +. 1e-9)

let prop_full_duplex_norm_bound =
  QCheck.Test.make ~name:"Lemma 6.1 for all windows and sizes" ~count:100
    QCheck.(
      triple (int_range 2 8) (int_range 2 30) (float_range 0.1 0.9))
    (fun (window, rounds, lambda) ->
      let m = Local_matrix.full_duplex_local ~window ~rounds ~lambda in
      Spectral.norm2_dense m
      <= Gossip_linalg.Poly.geometric lambda (window - 1) +. 1e-7)

(* --- certificates --- *)

let test_certificate_below_gossip_time () =
  List.iter
    (fun sys ->
      let gt =
        Option.get (Gossip_simulate.Engine.gossip_time sys)
      in
      let dg = Delay_digraph.of_systolic sys ~length:gt in
      let cert = Certificate.certify dg ~mode:(Systolic.mode sys) in
      check
        (Printf.sprintf "certificate %d <= measured %d" cert.Certificate.bound gt)
        true
        (cert.Certificate.bound <= gt);
      check "certificate nontrivial" true (cert.Certificate.bound >= 2))
    [
      Builders.hypercube_sweep ~dim:4 ~full_duplex:false;
      Builders.hypercube_sweep ~dim:4 ~full_duplex:true;
      Builders.cycle_rotate 12;
      Builders.edge_coloring_half_duplex (Families.de_bruijn 2 4);
      Builders.edge_coloring_full_duplex (Families.kautz 2 3);
    ]

let test_certificate_separator () =
  let d = 2 and dim = 5 in
  let g = Families.de_bruijn_directed d dim in
  let sys =
    Builders.random_systolic g Protocol.Directed ~period:6 ~seed:5 ~density:1.0
  in
  let horizon = 60 in
  let dg = Delay_digraph.of_systolic sys ~length:horizon in
  let sep = Separator.de_bruijn ~d ~dim in
  let plain = Certificate.certify dg ~mode:Protocol.Directed in
  let refined = Certificate.certify_separator dg ~mode:Protocol.Directed ~sep in
  check "separator bound >= distance" true
    (refined.Certificate.bound
    >= Metrics.set_distance g sep.Separator.v1 sep.Separator.v2);
  check "separator bound >= plain - slack" true
    (refined.Certificate.bound + 3 >= plain.Certificate.bound)

let test_certificate_refine_improves () =
  let sys = Builders.hypercube_sweep ~dim:4 ~full_duplex:false in
  let t = Option.get (Gossip_simulate.Engine.gossip_time sys) in
  let dg = Delay_digraph.of_systolic sys ~length:t in
  let plain = Certificate.certify dg ~mode:Protocol.Half_duplex in
  let refined = Certificate.certify ~refine:true dg ~mode:Protocol.Half_duplex in
  check "refined bound >= plain bound" true
    (refined.Certificate.bound >= plain.Certificate.bound);
  check "refined still sound" true (refined.Certificate.bound <= t)

let test_certify_systolic_stabilizes () =
  let sys = Builders.cycle_rotate 8 in
  let cert = Certificate.certify_systolic sys in
  let measured = Option.get (Gossip_simulate.Engine.gossip_time sys) in
  check "horizon-free certificate sound" true
    (cert.Certificate.bound <= measured);
  check "horizon-free certificate nontrivial" true (cert.Certificate.bound >= 2);
  (* consistency with a long manual expansion *)
  let dg = Delay_digraph.of_systolic sys ~length:(8 * Systolic.period sys) in
  let manual = Certificate.certify dg ~mode:Protocol.Half_duplex in
  check "within 1 of a long manual horizon" true
    (abs (cert.Certificate.bound - manual.Certificate.bound) <= 1)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_delay_digraph_to_dot () =
  let dg = Delay_digraph.of_systolic (tiny_systolic ()) ~length:4 in
  let dot = Delay_digraph.to_dot dg in
  check "digraph keyword" true (contains ~sub:"digraph" dot);
  check "activation label" true (contains ~sub:"0->1 @1" dot);
  check "delay weight label" true (contains ~sub:"label=\"1\"" dot)

let test_impossible_t_edges () =
  (* start > t: empty sum, always impossible when rhs > 0 *)
  check "empty sum impossible" true
    (Certificate.impossible_t ~nu:0.5 ~lambda:0.5 ~pairs:10.0 ~m:5.0 ~start:4 2);
  (* huge t: rhs shrinks geometrically, becomes possible *)
  check "large t possible" false
    (Certificate.impossible_t ~nu:0.9 ~lambda:0.5 ~pairs:10.0 ~m:5.0 ~start:1 60)

(* Separator information never weakens the plain certificate by more than
   the restriction slack, and respects the measured set distance. *)
let prop_separator_certificate_distance =
  QCheck.Test.make
    ~name:"separator certificate >= separator distance" ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let d = 2 and dim = 4 in
      let g = Families.de_bruijn_directed d dim in
      let sep = Separator.de_bruijn ~d ~dim in
      let sys =
        Builders.random_systolic g Protocol.Directed ~period:5 ~seed
          ~density:1.0
      in
      let dg = Delay_digraph.of_systolic sys ~length:40 in
      let cert = Certificate.certify_separator dg ~mode:Protocol.Directed ~sep in
      let dist =
        Metrics.set_distance g sep.Gossip_topology.Separator.v1
          sep.Gossip_topology.Separator.v2
      in
      cert.Certificate.bound >= dist)

let prop_certificate_sound =
  QCheck.Test.make
    ~name:"Thm 4.1 certificate never exceeds measured gossip time" ~count:25
    QCheck.(pair (int_range 0 100_000) (int_range 3 7))
    (fun (seed, period) ->
      let g = Families.de_bruijn 2 3 in
      let sys =
        Builders.random_systolic g Protocol.Half_duplex ~period ~seed
          ~density:1.0
      in
      match Gossip_simulate.Engine.gossip_time ~cap:400 sys with
      | None -> true (* incomplete protocols have nothing to certify *)
      | Some t ->
          let dg = Delay_digraph.of_systolic sys ~length:t in
          let cert = Certificate.certify dg ~mode:Protocol.Half_duplex in
          cert.Certificate.bound <= t)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("delay digraph counts", `Quick, test_delay_digraph_counts);
    ("delay digraph window", `Quick, test_delay_digraph_window_respected);
    ("delay digraph in/out", `Quick, test_delay_digraph_in_out);
    ("delay distances telescope", `Quick, test_delay_distances_telescope);
    ("window validation", `Quick, test_window_validation);
    ("delay matrix entries", `Quick, test_delay_matrix_entries);
    ("delay matrix lambda validation", `Quick, test_delay_matrix_lambda_validation);
    ("norm = blockwise norm (prop 8)", `Quick, test_norm_equals_blockwise);
    ("blockwise norm parallel bit-identical", `Quick,
      test_norm_blockwise_parallel_bitwise);
    ("key property: path counting", `Quick, test_key_property_path_counting);
    ("pattern construction", `Quick, test_pattern_construction);
    ("d_{i,j} values", `Quick, test_d_values);
    ("Mx structure (Fig 1-2)", `Quick, test_mx_structure);
    ("Mx delays within period", `Quick, test_mx_delays_below_period);
    ("Lemma 2.2 reduction route", `Quick, test_lemma_2_2_route);
    ("Lemma 4.2 semi-eigenvector", `Quick, test_lemma_4_2_semi_eigenvector);
    ("Mx norm monotone in h", `Quick, test_mx_norm_monotone_in_h);
    ("of_activation_pattern", `Quick, test_of_activation_pattern);
    ("full-duplex local matrix (Fig 7)", `Quick, test_full_duplex_local);
    ("certificates below gossip time", `Quick, test_certificate_below_gossip_time);
    ("separator certificate", `Quick, test_certificate_separator);
    ("impossible_t edges", `Quick, test_impossible_t_edges);
    ("certificate refine improves", `Quick, test_certificate_refine_improves);
    ("certify_systolic stabilizes", `Quick, test_certify_systolic_stabilizes);
    ("delay digraph to_dot", `Quick, test_delay_digraph_to_dot);
    q prop_norm_bound_half_duplex;
    q prop_norm_bound_directed;
    q prop_norm_bound_full_duplex;
    q prop_local_norm_bound;
    q prop_full_duplex_norm_bound;
    q prop_separator_certificate_distance;
    q prop_certificate_sound;
  ]
