(* Tests for the robustness stack: Fault_tolerant redundancy transforms
   (replicate / augment) and the adversarial <=k-failure Certifier.
   The empirical anchors: the plain alternating 12-cycle fails k = 1
   with minimal counterexample {0->1}, its augmented version certifies
   exhaustively, and both verdicts are deterministic per seed. *)

open Gossip_protocol
open Gossip_simulate
module Json = Gossip_util.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base12 () = Schedule.cycle_alternating ~n:12 ~full_duplex:false

(* --- transforms --- *)

let test_replicate_report () =
  let t = base12 () in
  let rep, r = Fault_tolerant.replicate t ~k:2 in
  check_int "period triples" (3 * Schedule.period t) (Schedule.period rep);
  check_int "calls triple" (3 * r.Fault_tolerant.base_calls)
    r.Fault_tolerant.calls;
  check_int "added_rounds consistent"
    (r.Fault_tolerant.period - r.Fault_tolerant.base_period)
    r.Fault_tolerant.added_rounds;
  check_int "added_calls consistent"
    (r.Fault_tolerant.calls - r.Fault_tolerant.base_calls)
    r.Fault_tolerant.added_calls;
  (* each base round appears k+1 times back to back *)
  let s = Schedule.period t in
  for i = 0 to (3 * s) - 1 do
    check "round i replays base round i/3" true
      (Schedule.round_arcs rep i = Schedule.round_arcs t (i / 3))
  done;
  Alcotest.check_raises "negative k"
    (Invalid_argument "Fault_tolerant.replicate: k must be >= 0") (fun () ->
      ignore (Fault_tolerant.replicate t ~k:(-1)))

let test_strides_doubling_walk () =
  Alcotest.(check (list int)) "n=12 doubles then caps" [ 2; 4 ]
    (Fault_tolerant.strides ~n:12 ~k:2);
  Alcotest.(check (list int)) "n=64 doubles" [ 2; 4; 8 ]
    (Fault_tolerant.strides ~n:64 ~k:3);
  Alcotest.(check (list int)) "short ring fills smallest unused" [ 2; 3 ]
    (Fault_tolerant.strides ~n:6 ~k:3);
  Alcotest.(check (list int)) "antipodal matching is the only n=4 chord" [ 2 ]
    (Fault_tolerant.strides ~n:4 ~k:2);
  Alcotest.(check (list int)) "too short for any chord" []
    (Fault_tolerant.strides ~n:3 ~k:2)

let test_concat_period_sum () =
  let t = base12 () in
  let c = Fault_tolerant.concat t t in
  check_int "periods add" (2 * Schedule.period t) (Schedule.period c);
  check "second period replays the first" true
    (Schedule.round_arcs c (Schedule.period t) = Schedule.round_arcs t 0);
  let other = Schedule.cycle_alternating ~n:8 ~full_duplex:false in
  check "vertex-count mismatch rejected" true
    (match Fault_tolerant.concat t other with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_augment_chords_are_disjoint () =
  let t = base12 () in
  let aug, r = Fault_tolerant.augment t ~k:1 in
  check "period grows" true (r.Fault_tolerant.added_rounds > 0);
  check "calls grow" true (r.Fault_tolerant.added_calls > 0);
  (* the appended chord rounds (stride 2) never re-use a base cycle arc *)
  let base_arcs = Certifier.period_arcs t in
  let is_base a = Array.exists (( = ) a) base_arcs in
  let s = Schedule.period t in
  for i = s to Schedule.period aug - 1 do
    List.iter
      (fun (u, v) ->
        check "chord arc is not a cycle arc" false (is_base (u, v));
        check "chord spans stride 2" true
          (let d = (v - u + 12) mod 12 in
           d = 2 || d = 10))
      (Schedule.round_arcs aug i)
  done;
  Alcotest.check_raises "too few vertices for chords"
    (Invalid_argument "Fault_tolerant.augment: n must be >= 5") (fun () ->
      ignore
        (Fault_tolerant.augment
           (Schedule.cycle_alternating ~n:4 ~full_duplex:false)
           ~k:1))

let test_harden_dispatch () =
  let t = base12 () in
  (match Fault_tolerant.harden t ~transform:"none" ~k:1 with
  | Ok (t', r) ->
      check "none is identity" true (Schedule.period t' = Schedule.period t);
      check_int "none costs nothing" 0 r.Fault_tolerant.added_calls
  | Error e -> Alcotest.fail e);
  check "replicate resolves" true
    (Result.is_ok (Fault_tolerant.harden t ~transform:"replicate" ~k:1));
  check "augment resolves" true
    (Result.is_ok (Fault_tolerant.harden t ~transform:"augment" ~k:1));
  check "unknown transform is an Error" true
    (Result.is_error (Fault_tolerant.harden t ~transform:"bogus" ~k:1));
  (* harden is total: transform preconditions come back as Error, not
     as an escaping Invalid_argument *)
  (match
     Fault_tolerant.harden
       (Schedule.cycle_alternating ~n:4 ~full_duplex:false)
       ~transform:"augment" ~k:1
   with
  | Error e -> check "n<5 precondition surfaces" true (e <> "")
  | Ok _ -> Alcotest.fail "augment on n=4 must be an Error");
  check "negative k is an Error" true
    (Result.is_error (Fault_tolerant.harden t ~transform:"replicate" ~k:(-1)));
  match Fault_tolerant.harden t ~transform:"augment" ~k:1 with
  | Ok (_, r) -> (
      match Json.member "transform" (Fault_tolerant.report_to_json r) with
      | Some (Json.Str "augment") -> ()
      | _ -> Alcotest.fail "report_to_json lacks the transform name")
  | Error e -> Alcotest.fail e

(* --- certifier --- *)

let test_certify_unhardened_cycle_fails () =
  let t = base12 () in
  let v = Certifier.certify ~domains:1 ~budget:512 t ~k:1 ~seed:7 in
  check "alternating cycle is not 1-fault-tolerant" false v.Certifier.certified;
  check "exhaustive regime" true (v.Certifier.cert_mode = Certifier.Exhaustive);
  check_int "C(24, <=1) patterns" 25 v.Certifier.patterns_total;
  (match v.Certifier.counterexample with
  | Some cx ->
      (* greedy shrink lands on the first arc in enumeration order *)
      check "minimal counterexample is one dead arc" true
        (cx.Certifier.cx_pattern = [ (0, 1) ]);
      check "coverage below 1" true (cx.Certifier.cx_coverage < 1.0)
  | None -> Alcotest.fail "uncertified verdict must carry a counterexample");
  (* deterministic per seed: byte-identical verdicts *)
  let v' = Certifier.certify ~domains:1 ~budget:512 t ~k:1 ~seed:7 in
  check "same seed, same verdict" true (v = v')

let test_certify_augmented_cycle_passes () =
  let t = base12 () in
  let aug, _ = Fault_tolerant.augment t ~k:1 in
  let v = Certifier.certify ~domains:1 ~budget:512 aug ~k:1 ~seed:7 in
  check "augmented cycle certifies k=1" true v.Certifier.certified;
  check "exhaustively" true (v.Certifier.cert_mode = Certifier.Exhaustive);
  check_int "every pattern checked" v.Certifier.patterns_total
    v.Certifier.patterns_checked;
  check "no counterexample" true (v.Certifier.counterexample = None);
  (match (v.Certifier.worst_time, v.Certifier.fault_free_time) with
  | Some w, Some t0 ->
      check "faults cost rounds" true (w >= t0);
      check "worst within cap" true (w <= v.Certifier.cap)
  | _ -> Alcotest.fail "certified verdict must carry both times");
  check "worst pattern recorded" true (v.Certifier.worst_pattern <> [])

let test_certify_sampled_mode_deterministic () =
  let t = base12 () in
  let aug, _ = Fault_tolerant.augment t ~k:2 in
  (* C(48, <=2) = 1177 > 64: sampled regime *)
  let v = Certifier.certify ~domains:1 ~budget:64 aug ~k:2 ~seed:5 in
  check "sampled regime" true (v.Certifier.cert_mode = Certifier.Sampled);
  check "checked the budget plus the fault-free run" true
    (v.Certifier.patterns_checked <= v.Certifier.budget + 1);
  check "total is the full space" true
    (v.Certifier.patterns_total > v.Certifier.patterns_checked);
  let v' = Certifier.certify ~domains:1 ~budget:64 aug ~k:2 ~seed:5 in
  check "same seed, same sample, same verdict" true (v = v')

let test_certify_validation_and_json () =
  let t = base12 () in
  check "negative k rejected" true
    (match Certifier.certify ~domains:1 t ~k:(-1) ~seed:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check "k beyond arc universe rejected" true
    (match Certifier.certify ~domains:1 t ~k:1000 ~seed:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let v = Certifier.certify ~domains:1 ~budget:512 t ~k:1 ~seed:7 in
  let j = Certifier.to_json t v in
  check "schema tag" true
    (Json.member "schema" j = Some (Json.Str "gossip-fault-cert/1"));
  check "fingerprint on the wire" true
    (Json.member "fingerprint" j = Some (Json.Str (Certifier.fingerprint t)));
  check "certified serialized" true
    (Json.member "certified" j = Some (Json.Bool false));
  check "exhaustive confidence is 1" true
    (Json.member "confidence" j = Some (Json.Float 1.0));
  match Json.member "counterexample" j with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "counterexample must serialize as an object"

let test_fingerprint_separates_schedules () =
  let t = base12 () in
  let aug, _ = Fault_tolerant.augment t ~k:1 in
  let rep, _ = Fault_tolerant.replicate t ~k:1 in
  let fps = [ Certifier.fingerprint t; Certifier.fingerprint aug;
              Certifier.fingerprint rep ] in
  check "three distinct fingerprints" true
    (List.length (List.sort_uniq compare fps) = 3);
  check "fingerprint is stable" true
    (Certifier.fingerprint t = Certifier.fingerprint (base12 ()))

let suite =
  [
    ("replicate report", `Quick, test_replicate_report);
    ("strides doubling walk", `Quick, test_strides_doubling_walk);
    ("concat periods", `Quick, test_concat_period_sum);
    ("augment chords disjoint", `Quick, test_augment_chords_are_disjoint);
    ("harden dispatch", `Quick, test_harden_dispatch);
    ("unhardened cycle fails k=1", `Quick, test_certify_unhardened_cycle_fails);
    ("augmented cycle certifies k=1", `Quick, test_certify_augmented_cycle_passes);
    ("sampled mode deterministic", `Quick, test_certify_sampled_mode_deterministic);
    ("validation and json", `Quick, test_certify_validation_and_json);
    ("fingerprints separate schedules", `Quick, test_fingerprint_separates_schedules);
  ]
