(* Tests for the implicit simulation stack: slot-function topologies
   pinned against the materialized families, Schedule generators
   validated through Protocol.make, and the chunked blockwise engine
   proved bit-for-bit equivalent to the legacy Engine on small
   instances. *)

open Gossip_topology
open Gossip_protocol
open Gossip_simulate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let get = function Some x -> x | None -> Alcotest.fail "expected completion"

(* --- implicit topologies vs materialized families --- *)

let agreement_cases =
  [
    ("cycle 5", Implicit.cycle 5, Families.cycle 5);
    ("cycle 8", Implicit.cycle 8, Families.cycle 8);
    ("hypercube 1", Implicit.hypercube 1, Families.hypercube 1);
    ("hypercube 4", Implicit.hypercube 4, Families.hypercube 4);
    ("torus 3x3", Implicit.torus 3 3, Families.torus 3 3);
    ("torus 3x4", Implicit.torus 3 4, Families.torus 3 4);
    ("torus 5x5", Implicit.torus 5 5, Families.torus 5 5);
    ("ccc 3", Implicit.ccc 3, Extra_families.cube_connected_cycles 3);
    ("ccc 4", Implicit.ccc 4, Extra_families.cube_connected_cycles 4);
    ("db(2,1)", Implicit.de_bruijn 2 1, Families.de_bruijn 2 1);
    ("db(2,3)", Implicit.de_bruijn 2 3, Families.de_bruijn 2 3);
    ("db(3,2)", Implicit.de_bruijn 3 2, Families.de_bruijn 3 2);
    ("db(2,5)", Implicit.de_bruijn 2 5, Families.de_bruijn 2 5);
    ("kautz(2,1)", Implicit.kautz 2 1, Families.kautz 2 1);
    ("kautz(2,3)", Implicit.kautz 2 3, Families.kautz 2 3);
    ("kautz(3,2)", Implicit.kautz 3 2, Families.kautz 3 2);
    ("kautz(2,4)", Implicit.kautz 2 4, Families.kautz 2 4);
  ]

let test_generators_agree () =
  List.iter
    (fun (name, imp, g) ->
      check (name ^ " agrees with materialized family") true
        (Implicit.agrees_with imp g))
    agreement_cases

let test_of_digraph_roundtrip () =
  List.iter
    (fun (name, _, g) ->
      check
        (name ^ " of_digraph round-trips")
        true
        (Implicit.agrees_with (Implicit.of_digraph g) g))
    agreement_cases

let test_fill_neighbors_dedup () =
  (* DB(2,1) has two vertices and only self-loop and duplicate slots *)
  let imp = Implicit.de_bruijn 2 1 in
  let buf = Array.make (Implicit.slots imp) (-1) in
  let c = Implicit.fill_neighbors imp 0 buf in
  check_int "DB(2,1) vertex 0 has one neighbor" 1 c;
  check_int "that neighbor is 1" 1 buf.(0);
  check "degree matches digraph" true
    (List.for_all
       (fun (_, imp, g) ->
         List.for_all
           (fun v ->
             Implicit.degree imp v = Array.length (Digraph.out_neighbors g v))
           (List.init (Implicit.n_vertices imp) Fun.id))
       agreement_cases)

let test_of_family_resolution () =
  (match Implicit.of_family ~family:"hypercube" ~n:100 ~degree:2 with
  | Ok imp -> check_int "hypercube >= 100 resolves to 128" 128
      (Implicit.n_vertices imp)
  | Error e -> Alcotest.fail e);
  (match Implicit.of_family ~family:"db" ~n:1000 ~degree:2 with
  | Ok imp -> check_int "db >= 1000 resolves to 1024" 1024
      (Implicit.n_vertices imp)
  | Error e -> Alcotest.fail e);
  (match Implicit.of_family ~family:"cycle" ~n:77 ~degree:2 with
  | Ok imp -> check_int "cycle is exact" 77 (Implicit.n_vertices imp)
  | Error e -> Alcotest.fail e);
  check "unknown family rejected" true
    (Result.is_error (Implicit.of_family ~family:"moebius" ~n:10 ~degree:2));
  check "tiny n rejected" true
    (Result.is_error (Implicit.of_family ~family:"cycle" ~n:2 ~degree:2))

(* --- schedules: validity through Protocol.make, on both duplex modes --- *)

let structured_cases full_duplex =
  [
    ( "hypercube sweep",
      Implicit.hypercube 4,
      Schedule.hypercube_sweep ~dim:4 ~full_duplex );
    ( "cycle even",
      Implicit.cycle 8,
      Schedule.cycle_alternating ~n:8 ~full_duplex );
    ( "cycle odd",
      Implicit.cycle 7,
      Schedule.cycle_alternating ~n:7 ~full_duplex );
    ( "torus even/odd",
      Implicit.torus 3 4,
      Schedule.torus_colored ~rows:3 ~cols:4 ~full_duplex );
    ("ccc", Implicit.ccc 3, Schedule.ccc_colored ~dim:3 ~full_duplex);
  ]

let proposal_cases full_duplex =
  List.map
    (fun (name, imp) ->
      (name, imp, Schedule.proposal imp ~period:16 ~seed:7 ~full_duplex))
    [
      ("db proposal", Implicit.de_bruijn 2 5);
      ("kautz proposal", Implicit.kautz 2 4);
    ]

let all_cases full_duplex = structured_cases full_duplex @ proposal_cases full_duplex

let test_schedules_are_valid_protocols () =
  List.iter
    (fun full_duplex ->
      List.iter
        (fun (name, imp, sched) ->
          let g = Implicit.materialize imp in
          (* Protocol.make re-validates every arc and every matching *)
          let sys = Schedule.to_systolic sched g in
          check_int
            (name ^ " period survives materialization")
            (Schedule.period sched) (Systolic.period sys))
        (all_cases full_duplex))
    [ true; false ]

let test_of_systolic_is_inverse () =
  let g = Families.hypercube 3 in
  let sys = Builders.edge_coloring_half_duplex g in
  let sched = Schedule.of_systolic sys in
  check_int "period preserved" (Systolic.period sys) (Schedule.period sched);
  for i = 0 to Systolic.period sys - 1 do
    let expected = List.sort compare (Systolic.period_round sys i) in
    check ("round " ^ string_of_int i ^ " reproduced") true
      (Schedule.round_arcs sched i = expected)
  done

(* --- chunked engine: bit-for-bit equivalence with the legacy Engine --- *)

let engine_run sys =
  let curve = ref [] in
  let probe ~round:_ ~coverage = curve := coverage :: !curve in
  let time = Engine.gossip_time ~probe sys in
  (time, List.rev !curve)

let chunked_run ?(domains = 1) ?items sched =
  let st = Chunked.create ?items (Schedule.n_vertices sched) in
  let outcome = Chunked.run ~domains ~checkpoint_every:1 st sched in
  (st, outcome)

let test_chunked_matches_engine () =
  List.iter
    (fun full_duplex ->
      List.iter
        (fun (name, imp, sched) ->
          let g = Implicit.materialize imp in
          let sys = Schedule.to_systolic sched g in
          let time, curve = engine_run sys in
          let _, outcome = chunked_run sched in
          check_int
            (Printf.sprintf "%s (fd=%b): same completion round" name
               full_duplex)
            (get time) (get outcome.Chunked.time);
          let chunked_curve =
            List.map (fun c -> c.Chunked.coverage) outcome.Chunked.checkpoints
          in
          check
            (Printf.sprintf "%s (fd=%b): identical coverage curve" name
               full_duplex)
            true (curve = chunked_curve))
        (all_cases full_duplex))
    [ true; false ]

let test_chunked_broadcast_matches_engine () =
  List.iter
    (fun (name, imp, sched) ->
      let g = Implicit.materialize imp in
      let sys = Schedule.to_systolic sched g in
      let bt = get (Engine.broadcast_time sys ~src:0) in
      let _, outcome = chunked_run ~items:1 sched in
      check_int (name ^ ": items=1 is broadcast of item 0") bt
        (get outcome.Chunked.time))
    (all_cases true)

let test_chunked_deterministic_across_domains () =
  List.iter
    (fun (name, _, sched) ->
      let st1, o1 = chunked_run ~domains:1 sched in
      let st4, o4 = chunked_run ~domains:4 sched in
      check_int (name ^ ": same rounds at 1 and 4 domains")
        (get o1.Chunked.time) (get o4.Chunked.time);
      check_int (name ^ ": same final count")
        (Chunked.items_known st1) (Chunked.items_known st4);
      (* project onto the deterministic fields: elapsed/rate/heap are
         wall-clock telemetry and legitimately differ between runs *)
      let curve o =
        List.map
          (fun c -> (c.Chunked.round, c.Chunked.coverage))
          o.Chunked.checkpoints
      in
      check (name ^ ": same curve") true (curve o1 = curve o4))
    (all_cases false)

let test_chunked_initial_state () =
  let st = Chunked.create ~items:3 8 in
  check_int "known = items" 3 (Chunked.items_known st);
  check "vertex 2 knows item 2" true (Chunked.knows st 2 2);
  check "vertex 2 only item 2" false (Chunked.knows st 2 1);
  check "vertex 5 knows nothing" false (Chunked.knows st 5 2);
  check "items clamped to n" true (Chunked.items (Chunked.create ~items:99 4) = 4);
  check "empty state complete" true (Chunked.complete (Chunked.create 0));
  (* > 63 items exercises the multi-word path *)
  let st = Chunked.create 100 in
  check_int "100 items over 2 words" 100 (Chunked.items_known st);
  check "v99 knows item 99" true (Chunked.knows st 99 99)

let test_chunked_multiword_equivalence () =
  (* n = 100 > 63 forces two state words per vertex *)
  let sched = Schedule.cycle_alternating ~n:100 ~full_duplex:true in
  let g = Families.cycle 100 in
  let sys = Schedule.to_systolic sched g in
  let time, _ = engine_run sys in
  let _, outcome = chunked_run sched in
  check_int "100-cycle same completion" (get time) (get outcome.Chunked.time)

let test_checkpoint_streaming_cadence () =
  let sched = Schedule.hypercube_sweep ~dim:4 ~full_duplex:true in
  let st = Chunked.create 16 in
  let outcome = Chunked.run ~domains:1 ~checkpoint_every:3 st sched in
  let t = get outcome.Chunked.time in
  let rounds = List.map (fun c -> c.Chunked.round) outcome.Chunked.checkpoints in
  check "checkpoints at multiples of 3 plus the final round" true
    (List.for_all (fun r -> r mod 3 = 0 || r = t) rounds);
  check "final round present" true (List.mem t rounds);
  let no_cp = Chunked.run ~domains:1 (Chunked.create 16) sched in
  ignore no_cp.Chunked.time;
  check "checkpointing off by default" true (no_cp.Chunked.checkpoints = [])

(* --- faults on implicit arc streams --- *)

let test_implicit_faults_p0_baseline () =
  let sched = Schedule.hypercube_sweep ~dim:4 ~full_duplex:false in
  let _, base = chunked_run sched in
  let _, o =
    Faults.implicit_gossip ~domains:1 sched ~drop_probability:0.0 ~seed:5
  in
  check_int "p=0 is the fault-free run" (get base.Chunked.time)
    (get o.Chunked.time)

let test_implicit_faults_p1_stalls () =
  let sched = Schedule.hypercube_sweep ~dim:3 ~full_duplex:false in
  let st, o =
    Faults.implicit_gossip ~domains:1 ~cap:50 sched ~drop_probability:1.0
      ~seed:5
  in
  check "p=1 never completes" true (o.Chunked.time = None);
  check_int "p=1 learns nothing" 8 (Chunked.items_known st)

let test_implicit_faults_deterministic () =
  let sched = Schedule.hypercube_sweep ~dim:4 ~full_duplex:true in
  let run () =
    let _, o =
      Faults.implicit_gossip ~domains:1 ~cap:500 sched ~drop_probability:0.3
        ~seed:42
    in
    (o.Chunked.time, o.Chunked.rounds_run)
  in
  check "same seed, same run" true (run () = run ());
  let _, slower =
    Faults.implicit_gossip ~domains:1 ~cap:500 sched ~drop_probability:0.3
      ~seed:42
  in
  let _, fault_free = chunked_run sched in
  check "drops never speed gossip up" true
    (match (slower.Chunked.time, fault_free.Chunked.time) with
    | Some s, Some f -> s >= f
    | None, Some _ -> true
    | _ -> false)

let test_with_drops_stacking_is_union () =
  (* two stacked predicates suppress exactly the union of their arc
     sets — wrapping twice must not shadow or resurrect anything *)
  let base = Schedule.cycle_alternating ~n:8 ~full_duplex:false in
  let drop1 ~round:_ ~u ~v = (u, v) = (0, 1) in
  let drop2 ~round:_ ~u ~v = (u, v) = (2, 3) in
  let stacked =
    Schedule.with_drops (Schedule.with_drops base ~drop:drop1) ~drop:drop2
  in
  let union ~round ~u ~v = drop1 ~round ~u ~v || drop2 ~round ~u ~v in
  let merged = Schedule.with_drops base ~drop:union in
  let dropped_something = ref false in
  for r = 0 to (2 * Schedule.period base) - 1 do
    let b = Schedule.round_arcs base r in
    let s = Schedule.round_arcs stacked r in
    check "stacked = single union predicate" true
      (s = Schedule.round_arcs merged r);
    check "stacked arcs are base arcs minus the union" true
      (s = List.filter (fun (u, v) -> not (union ~round:r ~u ~v)) b);
    if List.length s < List.length b then dropped_something := true
  done;
  check "the union actually suppressed arcs" true !dropped_something

let test_with_drops_absolute_rounds () =
  (* drops key on the ABSOLUTE round index: killing round period+1 must
     leave round 1 — the same residue one period earlier — untouched *)
  let base = Schedule.cycle_alternating ~n:8 ~full_duplex:false in
  let s = Schedule.period base in
  let lossy =
    Schedule.with_drops base ~drop:(fun ~round ~u:_ ~v:_ -> round = s + 1)
  in
  check "round 1 unaffected" true
    (Schedule.round_arcs lossy 1 = Schedule.round_arcs base 1);
  check "round period+1 emptied" true (Schedule.round_arcs lossy (s + 1) = []);
  check "round period+1 had arcs to lose" true
    (Schedule.round_arcs base (s + 1) <> []);
  check "round 2*period+1 unaffected" true
    (Schedule.round_arcs lossy ((2 * s) + 1)
    = Schedule.round_arcs base ((2 * s) + 1))

let suite =
  [
    ("implicit generators agree", `Quick, test_generators_agree);
    ("of_digraph round-trips", `Quick, test_of_digraph_roundtrip);
    ("fill_neighbors dedups", `Quick, test_fill_neighbors_dedup);
    ("of_family resolution", `Quick, test_of_family_resolution);
    ("schedules are valid protocols", `Quick, test_schedules_are_valid_protocols);
    ("of_systolic inverse", `Quick, test_of_systolic_is_inverse);
    ("chunked = engine (gossip)", `Quick, test_chunked_matches_engine);
    ("chunked = engine (broadcast)", `Quick, test_chunked_broadcast_matches_engine);
    ("chunked deterministic across domains", `Quick,
     test_chunked_deterministic_across_domains);
    ("chunked initial state", `Quick, test_chunked_initial_state);
    ("chunked multi-word state", `Quick, test_chunked_multiword_equivalence);
    ("checkpoint cadence", `Quick, test_checkpoint_streaming_cadence);
    ("implicit faults p=0 baseline", `Quick, test_implicit_faults_p0_baseline);
    ("implicit faults p=1 stalls", `Quick, test_implicit_faults_p1_stalls);
    ("implicit faults deterministic", `Quick, test_implicit_faults_deterministic);
    ("with_drops stacking is union", `Quick, test_with_drops_stacking_is_union);
    ("with_drops keys absolute rounds", `Quick, test_with_drops_absolute_rounds);
  ]
