let () =
  Alcotest.run "systolic_gossip"
    [
      ("util", Test_util.suite);
      ("rolling", Test_rolling.suite);
      ("telemetry", Test_telemetry.suite);
      ("resource", Test_resource.suite);
      ("linalg", Test_linalg.suite);
      ("topology", Test_topology.suite);
      ("protocol", Test_protocol.suite);
      ("simulate", Test_simulate.suite);
      ("implicit", Test_implicit.suite);
      ("fault_tolerant", Test_fault_tolerant.suite);
      ("delay", Test_delay.suite);
      ("bounds", Test_bounds.suite);
      ("context", Test_context.suite);
      ("search", Test_search.suite);
      ("extensions", Test_extensions.suite);
      ("analysis", Test_analysis.suite);
      ("integration", Test_integration.suite);
      ("serve", Test_serve.suite);
      ("cluster", Test_cluster.suite);
    ]
