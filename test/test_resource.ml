(* Tests for Gossip_util.Resource (GC/memory snapshots and the
   background sampler), the per-span [alloc_words] deltas streamed by
   Instrument, and the Perf_diff regression gate. *)

open Gossip_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- snapshots --- *)

let churn words =
  (* allocate roughly [words] words of minor-heap garbage *)
  let n = words / 102 in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (Array.make 100 0.0))
  done

let test_counters_monotone () =
  let before = Resource.sample () in
  churn 500_000;
  let after = Resource.sample () in
  check "minor_words grows" true
    (after.Resource.minor_words > before.Resource.minor_words);
  check "allocated_words monotone" true
    (Resource.allocated_words () >= before.Resource.minor_words);
  check "minor collections never decrease" true
    (after.Resource.minor_collections >= before.Resource.minor_collections);
  check "major collections never decrease" true
    (after.Resource.major_collections >= before.Resource.major_collections);
  check "heap size positive" true (after.Resource.heap_words > 0);
  check "heap_mb consistent" true
    (abs_float
       (after.Resource.heap_mb
       -. (float_of_int after.Resource.heap_words *. 8.0 /. (1024.0 *. 1024.0))
       )
    < 1e-6);
  match after.Resource.rss_mb with
  | Some r -> check "rss positive when readable" true (r > 0.0)
  | None -> () (* portable fallback: no /proc *)

let test_snapshot_json_shape () =
  let s = Resource.sample () in
  let j = Resource.to_json s in
  List.iter
    (fun field ->
      check (field ^ " present") true (Json.member field j <> None))
    [
      "minor_words";
      "promoted_words";
      "major_words";
      "minor_collections";
      "major_collections";
      "compactions";
      "forced_major_collections";
      "heap_words";
      "heap_mb";
      "rss_mb";
    ]

let test_delta_json () =
  let before = Resource.sample () in
  churn 300_000;
  let after = Resource.sample () in
  let d = Resource.delta_json ~before ~after in
  (match Json.member "allocated_words" d with
  | Some (Json.Float w) -> check "delta sees the churn" true (w > 100_000.0)
  | _ -> Alcotest.fail "delta_json lacks allocated_words");
  (* swapped order: clamped to zero, never negative *)
  let swapped = Resource.delta_json ~before:after ~after:before in
  match Json.member "allocated_words" swapped with
  | Some (Json.Float w) -> check "negative delta clamps" true (w = 0.0)
  | _ -> Alcotest.fail "swapped delta_json lacks allocated_words"

let test_snapshot_under_domains () =
  (* sampling is safe from any domain; counters are per-domain so every
     worker sees a well-formed snapshot of its own *)
  let snaps =
    Parallel.init ~domains:4 16 (fun _ ->
        churn 10_000;
        Resource.sample ())
  in
  Array.iter
    (fun s ->
      check "worker minor_words nonneg" true (s.Resource.minor_words >= 0.0);
      check "worker heap positive" true (s.Resource.heap_words > 0))
    snaps

(* --- background sampler --- *)

let test_sampler_lifecycle () =
  Resource.stop_sampler ();
  let seen = Atomic.make 0 in
  let started =
    Resource.start_sampler ~interval_ms:10
      ~on_sample:(fun _ -> Atomic.incr seen)
      ()
  in
  check "first start starts" true started;
  check "second start is a no-op" false (Resource.start_sampler ());
  check "running" true (Resource.sampler_running ());
  let deadline = Unix.gettimeofday () +. 2.0 in
  while Atomic.get seen < 2 && Unix.gettimeofday () < deadline do
    Thread.yield ()
  done;
  check "sampler sampled at least twice" true (Atomic.get seen >= 2);
  Resource.stop_sampler ();
  check "stopped" false (Resource.sampler_running ());
  Resource.stop_sampler ();
  (* a fresh sampler can start after a stop *)
  check "restartable" true (Resource.start_sampler ~interval_ms:10 ());
  Resource.stop_sampler ();
  check "stopped again" false (Resource.sampler_running ())

let test_publish_gauges () =
  Instrument.reset ();
  ignore (Resource.sample_and_publish ());
  let gauges = Instrument.gauges () in
  let has name = List.mem_assoc name gauges in
  List.iter
    (fun g -> check (g ^ " gauge published") true (has g))
    [
      "gc.minor_words";
      "gc.major_words";
      "gc.minor_collections";
      "gc.major_collections";
      "gc.heap_mb";
    ];
  check "samples counted" true
    (List.assoc_opt "resource.samples" (Instrument.counters ()) = Some 1);
  Instrument.reset ()

(* --- per-span alloc_words on the trace stream --- *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (if line = "" then acc else line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let span_end_alloc name lines =
  List.find_map
    (fun l ->
      match Json.of_string l with
      | Ok j
        when Json.member "ev" j = Some (Json.Str "span_end")
             && Json.member "name" j = Some (Json.Str name) ->
          Json.(member "alloc_words" j |> Option.map to_int_opt)
          |> Option.join
      | _ -> None)
    lines

let test_span_alloc_words () =
  let path = Filename.temp_file "gossip_alloc" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Instrument.set_trace_file None;
      Instrument.reset ();
      Sys.remove path)
    (fun () ->
      Instrument.reset ();
      Instrument.set_trace_file (Some path);
      Instrument.span "alloc.heavy" (fun () -> churn 400_000);
      Instrument.span "alloc.noop" (fun () -> ignore (Sys.opaque_identity 1));
      Instrument.set_trace_file None;
      let lines = read_lines path in
      (match span_end_alloc "alloc.heavy" lines with
      | Some w ->
          check "allocating span sees its words" true (w >= 300_000)
      | None -> Alcotest.fail "alloc.heavy span_end lacks alloc_words");
      match span_end_alloc "alloc.noop" lines with
      | Some w ->
          (* the no-op span may still be charged a few closure/JSON
             words, but nothing near a real workload *)
          check "no-op span stays near zero" true (w < 10_000)
      | None -> Alcotest.fail "alloc.noop span_end lacks alloc_words")

(* --- perf_diff: the regression gate --- *)

let bench_report parts =
  Json.Obj
    [
      ("schema", Json.Str "gossip-bench/1");
      ( "parts",
        Json.List
          (List.mapi
             (fun i (name, seconds, alloc) ->
               Json.Obj
                 ([
                    ("part", Json.Int (i + 1));
                    ("name", Json.Str name);
                    ("seconds", Json.Float seconds);
                  ]
                 @
                 match alloc with
                 | None -> []
                 | Some w ->
                     [
                       ( "resource",
                         Json.Obj [ ("allocated_words", Json.Float w) ] );
                     ]))
             parts) );
    ]

let compare_exn ~base ~current =
  match Perf_diff.compare_reports ~base ~current with
  | Ok c -> c
  | Error e -> Alcotest.fail e

let test_perf_diff_clean () =
  let base =
    bench_report
      [ ("fig4", 0.5, Some 1e6); ("certificates", 6.0, Some 7e8) ]
  in
  let c = compare_exn ~base ~current:base in
  check_int "both parts matched" 2 (List.length c.Perf_diff.matched);
  check "identical reports pass" true
    (Perf_diff.check c = Ok ());
  check_int "no regressions" 0 (List.length (Perf_diff.regressions c))

let test_perf_diff_seeded_regression () =
  (* the acceptance scenario: a part seeded 50% slower must gate at the
     default 25% tolerance — this predicate is exactly what drives the
     CLI's nonzero exit under --check *)
  let base = bench_report [ ("certificates", 1.0, Some 1e6) ] in
  let current = bench_report [ ("certificates", 1.5, Some 2e6) ] in
  let c = compare_exn ~base ~current in
  (match Perf_diff.check c with
  | Error [ line ] ->
      check "regression line is descriptive" true (String.length line > 0)
  | Error _ -> Alcotest.fail "expected exactly one regression line"
  | Ok () -> Alcotest.fail "seeded regression slipped through the gate");
  check "render marks it" true
    (let t = Perf_diff.render c in
     let re = "REGRESSED" in
     let found = ref false in
     let lr = String.length re and lt = String.length t in
     for i = 0 to lt - lr do
       if String.sub t i lr = re then found := true
     done;
     !found);
  (* a 10% drift stays within the default tolerance *)
  let mild = bench_report [ ("certificates", 1.1, Some 1e6) ] in
  check "10% drift passes" true
    (Perf_diff.check (compare_exn ~base ~current:mild) = Ok ())

let test_perf_diff_noise_floor () =
  (* sub-hundredth-second parts never gate, however large the ratio *)
  let base = bench_report [ ("cache-stats", 0.001, None) ] in
  let current = bench_report [ ("cache-stats", 0.005, None) ] in
  let c = compare_exn ~base ~current in
  check "tiny parts never gate" true (Perf_diff.check c = Ok ());
  (* … unless the floor is lowered explicitly *)
  check "explicit floor gates them" true
    (Perf_diff.check ~min_seconds:0.0001 c <> Ok ())

let test_perf_diff_part_drift () =
  (* parts are paired by name, so renumbering does not raise spurious
     regressions; added/removed parts are reported, not fatal *)
  let base =
    bench_report [ ("fig4", 0.5, None); ("retired-part", 2.0, None) ]
  in
  let current =
    bench_report [ ("brand-new", 1.0, None); ("fig4", 0.5, None) ]
  in
  let c = compare_exn ~base ~current in
  check_int "one part matched" 1 (List.length c.Perf_diff.matched);
  check "removed part listed" true
    (c.Perf_diff.only_base = [ "retired-part" ]);
  check "new part listed" true (c.Perf_diff.only_current = [ "brand-new" ]);
  check "drift alone does not gate" true (Perf_diff.check c = Ok ())

let test_perf_diff_rejects_malformed () =
  (match Perf_diff.of_report (Json.Obj [ ("schema", Json.Str "nope/1") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted");
  match Perf_diff.of_report (Json.Obj [ ("schema", Json.Str "gossip-bench/1") ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing parts accepted"

let suite =
  [
    Alcotest.test_case "counters monotone" `Quick test_counters_monotone;
    Alcotest.test_case "snapshot json shape" `Quick test_snapshot_json_shape;
    Alcotest.test_case "delta json" `Quick test_delta_json;
    Alcotest.test_case "snapshot under 4 domains" `Quick
      test_snapshot_under_domains;
    Alcotest.test_case "sampler lifecycle" `Quick test_sampler_lifecycle;
    Alcotest.test_case "publish gauges" `Quick test_publish_gauges;
    Alcotest.test_case "span alloc_words" `Quick test_span_alloc_words;
    Alcotest.test_case "perf_diff clean" `Quick test_perf_diff_clean;
    Alcotest.test_case "perf_diff seeded regression" `Quick
      test_perf_diff_seeded_regression;
    Alcotest.test_case "perf_diff noise floor" `Quick
      test_perf_diff_noise_floor;
    Alcotest.test_case "perf_diff part drift" `Quick test_perf_diff_part_drift;
    Alcotest.test_case "perf_diff rejects malformed" `Quick
      test_perf_diff_rejects_malformed;
  ]
