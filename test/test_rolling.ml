(* Util.Rolling: slot rotation at boundaries, quantile estimation on
   known inputs, caller-supplied clock samples, and concurrent
   observers from multiple domains. *)

module Rolling = Gossip_util.Rolling

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let close ?(eps = 1e-9) what a b =
  check (Printf.sprintf "%s: %g ~ %g" what a b) true (Float.abs (a -. b) <= eps)

(* A window on a hand-cranked clock: 4 slots of 1000 ns. *)
let manual () =
  let t_ref = ref 0L in
  let w = Rolling.create ~clock:(fun () -> !t_ref) ~slot_ns:1000L ~slots:4 () in
  (w, t_ref)

let test_empty () =
  let w, _ = manual () in
  let s = Rolling.snapshot w in
  check_int "count" 0 s.Rolling.count;
  close "sum" s.Rolling.sum 0.0;
  check "min is +inf" true (s.Rolling.min_v = Float.infinity);
  check "max is -inf" true (s.Rolling.max_v = Float.neg_infinity);
  check "mean NaN" true (Float.is_nan (Rolling.mean s));
  check "quantile NaN" true (Float.is_nan (Rolling.quantile s 0.5));
  close "window spans 4 slots" s.Rolling.window_s 4e-6

let test_rotation_at_slot_boundaries () =
  let w, clock = manual () in
  (* one observation per slot, at the last tick of each *)
  clock := 999L;
  Rolling.observe w 1.0;
  clock := 1000L;
  (* first tick of slot 1: the boundary separates the two *)
  Rolling.observe w 2.0;
  check_int "window=1 sees only the current slot" 1 (Rolling.count ~window:1 w);
  check_int "window=2 sees both" 2 (Rolling.count ~window:2 w);
  clock := 2500L;
  Rolling.observe w 3.0;
  clock := 3999L;
  Rolling.observe w 4.0;
  check_int "all four slots live" 4 (Rolling.count w);
  (* slot 4 reuses array position 0 and must recycle the 1.0 from t=999 *)
  clock := 4000L;
  Rolling.observe w 5.0;
  let s = Rolling.snapshot w in
  check_int "oldest slot aged out" 4 s.Rolling.count;
  close "recycled slot's value gone from the sum" s.Rolling.sum
    (2.0 +. 3.0 +. 4.0 +. 5.0);
  close "min is from the surviving slots" s.Rolling.min_v 2.0;
  (* jumping far ahead stales every slot *)
  clock := 100_000L;
  check_int "long silence empties the window" 0 (Rolling.count w)

let test_add_only_counters () =
  let w, clock = manual () in
  Rolling.add w 5;
  clock := 1000L;
  Rolling.add w 7;
  let s = Rolling.snapshot w in
  check_int "adds accumulate" 12 s.Rolling.count;
  check "no values, no quantile" true (Float.is_nan (Rolling.quantile s 0.5));
  close "rate over the 4-slot window" (Rolling.rate s) (12.0 /. 4e-6)

let test_quantiles_known_inputs () =
  let w, _ = manual () in
  (* a single repeated value: every quantile collapses onto it, because
     the estimator clamps interpolation to the observed min/max *)
  for _ = 1 to 100 do
    Rolling.observe w 0.5
  done;
  let s = Rolling.snapshot w in
  close "p50 of constant" (Rolling.quantile s 0.5) 0.5;
  close "p99 of constant" (Rolling.quantile s 0.99) 0.5;
  close "mean of constant" (Rolling.mean s) 0.5;
  (* bimodal: 50 fast (2 ms) + 50 slow (200 ms).  Ranks below the
     midpoint land in the fast bucket, above it in the slow bucket. *)
  let w2, _ = manual () in
  for _ = 1 to 50 do
    Rolling.observe w2 0.002
  done;
  for _ = 1 to 50 do
    Rolling.observe w2 0.2
  done;
  let s2 = Rolling.snapshot w2 in
  close "bimodal mean" (Rolling.mean s2) 0.101;
  close "bimodal min" s2.Rolling.min_v 0.002;
  close "bimodal max" s2.Rolling.max_v 0.2;
  let p25 = Rolling.quantile s2 0.25 and p75 = Rolling.quantile s2 0.75 in
  check "p25 in the fast mode" true (p25 >= 0.002 && p25 <= 0.00316);
  check "p75 in the slow mode" true (p75 >= 0.1 && p75 <= 0.2);
  check "quantiles ordered" true (p25 < p75)

let test_observe_at_shares_clock_sample () =
  let w, clock = manual () in
  (* explicit samples land in the slot the sample says, not the slot the
     window's own clock says *)
  clock := 0L;
  Rolling.observe_at w ~now_ns:3500L 1.0;
  Rolling.add_at w ~now_ns:3500L 2;
  (* from the window clock's viewpoint (t = 0) the sample's slot is in
     the future, so it is not merged yet *)
  check_int "future slot not visible at t=0" 0 (Rolling.count w);
  clock := 3500L;
  check_int "visible at the sample's own time, window=1" 3
    (Rolling.count ~window:1 w);
  (* the window's own clock path lands in the same slot now *)
  Rolling.observe w 2.0;
  check_int "mixed observe/observe_at share the slot" 4
    (Rolling.count ~window:1 w)

let test_window_clamping () =
  let w, clock = manual () in
  Rolling.observe w 1.0;
  clock := 3000L;
  Rolling.observe w 2.0;
  check_int "window 0 clamps to 1" 1 (Rolling.count ~window:0 w);
  check_int "window beyond slots clamps to slots" 2 (Rolling.count ~window:99 w)

let test_concurrent_domains () =
  (* default monotonic clock; 4 domains hammer one window.  300 slots of
     1 s mean nothing ages out during the test, so every observation
     must be visible: the per-window mutex may not lose updates. *)
  let w = Rolling.create ~slot_ns:1_000_000_000L ~slots:300 () in
  let per = 10_000 in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              if i land 1 = 0 then Rolling.observe w (float_of_int d +. 0.5)
              else Rolling.add w 1
            done))
  in
  List.iter Domain.join ds;
  let s = Rolling.snapshot w in
  check_int "no lost updates" (4 * per) s.Rolling.count;
  (* only the observed half carries values *)
  check_int "histogram holds the observed half" (4 * per / 2)
    (Array.fold_left ( + ) 0 s.Rolling.bucket_counts);
  close "max is the largest domain's value" s.Rolling.max_v 3.5;
  close "min is the smallest domain's value" s.Rolling.min_v 0.5

let test_create_validation () =
  Alcotest.check_raises "slots < 1"
    (Invalid_argument "Rolling.create: slots < 1") (fun () ->
      ignore (Rolling.create ~slot_ns:1000L ~slots:0 ()));
  Alcotest.check_raises "slot_ns < 1"
    (Invalid_argument "Rolling.create: slot_ns < 1") (fun () ->
      ignore (Rolling.create ~slot_ns:0L ~slots:4 ()))

let suite =
  [
    ("empty snapshot", `Quick, test_empty);
    ("rotation at slot boundaries", `Quick, test_rotation_at_slot_boundaries);
    ("add-only counters", `Quick, test_add_only_counters);
    ("quantiles on known inputs", `Quick, test_quantiles_known_inputs);
    ("observe_at shares a clock sample", `Quick, test_observe_at_shares_clock_sample);
    ("window clamping", `Quick, test_window_clamping);
    ("concurrent domains", `Quick, test_concurrent_domains);
    ("create validation", `Quick, test_create_validation);
  ]
