(* The serving subsystem: bounded queue semantics, wire-protocol golden
   round trips and rejections, and end-to-end runs against an in-process
   server on a Unix socket — concurrent clients, malformed and oversized
   frames, the queue-full backpressure reply, deadline-exceeded replies,
   and graceful shutdown. *)

module Json = Gossip_util.Json
module Queue_ = Gossip_serve.Bounded_queue
module Wire = Gossip_serve.Wire
module Dispatch = Gossip_serve.Dispatch
module Server = Gossip_serve.Server
module Client = Gossip_serve.Client
module Metrics = Gossip_serve.Metrics
module Trace_analysis = Gossip_serve.Trace_analysis
module Chaos = Gossip_serve.Chaos
module Supervisor = Gossip_serve.Supervisor
module Resilient = Gossip_serve.Resilient_client

(* [dig ["a";"b"] j] follows nested object members. *)
let rec dig path j =
  match path with
  | [] -> Some j
  | k :: rest -> Option.bind (Json.member k j) (dig rest)

let dig_int path j = Option.bind (dig path j) Json.to_int_opt
let dig_str path j = Option.bind (dig path j) Json.to_string_opt

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- bounded queue --- *)

let test_queue_basic () =
  let q = Queue_.create ~capacity:2 in
  check_int "capacity" 2 (Queue_.capacity q);
  check "push 1" true (Queue_.try_push q 1 = `Ok);
  check "push 2" true (Queue_.try_push q 2 = `Ok);
  check "push 3 full" true (Queue_.try_push q 3 = `Full);
  check_int "length" 2 (Queue_.length q);
  check "pop fifo" true (Queue_.pop q = Some 1);
  check "freed a slot" true (Queue_.try_push q 4 = `Ok);
  check "pop 2" true (Queue_.pop q = Some 2);
  check "pop 4" true (Queue_.pop q = Some 4);
  Queue_.close q;
  check "push after close" true (Queue_.try_push q 5 = `Closed);
  check "pop after close drained" true (Queue_.pop q = None);
  check "closed" true (Queue_.is_closed q);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Bounded_queue.create: capacity < 1") (fun () ->
      ignore (Queue_.create ~capacity:0))

let test_queue_close_drains_backlog () =
  let q = Queue_.create ~capacity:4 in
  ignore (Queue_.try_push q "a");
  ignore (Queue_.try_push q "b");
  Queue_.close q;
  (* close means "no new work", not "drop work" *)
  check "backlog a" true (Queue_.pop q = Some "a");
  check "backlog b" true (Queue_.pop q = Some "b");
  check "then None" true (Queue_.pop q = None)

let test_queue_concurrent () =
  let q = Queue_.create ~capacity:1024 in
  let producers = 4 and per = 250 in
  let popped = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        let rec go () =
          match Queue_.pop q with
          | Some x ->
              popped := x :: !popped;
              go ()
          | None -> ()
        in
        go ())
      ()
  in
  let ts =
    List.init producers (fun p ->
        Thread.create
          (fun () ->
            for i = 0 to per - 1 do
              while Queue_.try_push q ((p * per) + i) <> `Ok do
                Thread.yield ()
              done
            done)
          ())
  in
  List.iter Thread.join ts;
  Queue_.close q;
  Thread.join consumer;
  check_int "all delivered" (producers * per) (List.length !popped);
  check "no duplicates" true
    (List.length (List.sort_uniq compare !popped) = producers * per)

(* --- wire: golden round trips --- *)

let net = { Wire.family = "hypercube"; dim = 4; degree = 2 }

let all_ops =
  [
    Wire.Ping;
    Wire.Version;
    Wire.Shutdown;
    Wire.Stats;
    Wire.Metrics;
    Wire.Health;
    Wire.Spans;
    Wire.Sleep { ms = 250 };
    Wire.Tables { s_max = 8; ss = [ 3; 4; 5 ] };
    Wire.Bound { net; s = Some 4; full_duplex = false };
    Wire.Bound { net; s = None; full_duplex = true };
    Wire.Simulate { net; full_duplex = true };
    Wire.Simulate_implicit
      {
        family = "de-bruijn";
        n = 4096;
        items = 32;
        checkpoint_every = 16;
        period = 64;
        seed = 3;
        degree = 2;
        full_duplex = true;
      };
    Wire.Certify { spec = Wire.Built { net; full_duplex = false }; refine = true };
    Wire.Certify { spec = Wire.Inline "mode half_duplex\nn 2\nperiod 1\nround 0: 0>1"; refine = false };
    Wire.Certify_faults
      {
        family = "cycle";
        n = 12;
        k = 2;
        budget = 256;
        seed = 9;
        degree = 2;
        full_duplex = true;
        harden = "augment";
        cap = 50;
      };
    Wire.Trace_pull { max = 512 };
  ]

let test_wire_request_roundtrip () =
  List.iteri
    (fun i op ->
      let req =
        { Wire.id = Json.Int i; op; timeout_ms = Some (100 + i); trace = None }
      in
      match Wire.parse_request (Wire.request_to_json req) with
      | Ok req' ->
          check (Printf.sprintf "roundtrip %s" (Wire.op_name op)) true
            (req = req')
      | Error e -> Alcotest.failf "roundtrip %s: %s" (Wire.op_name op) e)
    all_ops;
  (* no id, no timeout *)
  let req =
    { Wire.id = Json.Null; op = Wire.Ping; timeout_ms = None; trace = None }
  in
  check "bare ping" true (Wire.parse_request (Wire.request_to_json req) = Ok req)

let test_wire_golden_requests () =
  (* frames as a foreign client would write them *)
  let cases =
    [
      ( {|{"op":"ping"}|},
        { Wire.id = Json.Null; op = Wire.Ping; timeout_ms = None; trace = None } );
      ( {|{"id":7,"op":"tables","params":{"s_max":6,"ss":[3,4]},"timeout_ms":500}|},
        {
          Wire.id = Json.Int 7;
          op = Wire.Tables { s_max = 6; ss = [ 3; 4 ] };
          timeout_ms = Some 500;
          trace = None;
        } );
      ( {|{"id":"abc","op":"bound","params":{"family":"cycle","dim":16}}|},
        {
          Wire.id = Json.Str "abc";
          op =
            Wire.Bound
              {
                net = { Wire.family = "cycle"; dim = 16; degree = 2 };
                s = None;
                full_duplex = false;
              };
          timeout_ms = None;
          trace = None;
        } );
      ( {|{"op":"simulate_implicit","params":{"family":"hypercube","n":512}}|},
        {
          Wire.id = Json.Null;
          op =
            Wire.Simulate_implicit
              {
                family = "hypercube";
                n = 512;
                items = 32;
                checkpoint_every = 32;
                period = 64;
                seed = 1;
                degree = 2;
                full_duplex = false;
              };
          timeout_ms = None;
          trace = None;
        } );
      ( {|{"op":"certify_faults","params":{"family":"cycle","n":12,"harden":"augment"}}|},
        {
          Wire.id = Json.Null;
          op =
            Wire.Certify_faults
              {
                family = "cycle";
                n = 12;
                k = 1;
                budget = 512;
                seed = 1;
                degree = 2;
                full_duplex = false;
                harden = "augment";
                cap = 0;
              };
          timeout_ms = None;
          trace = None;
        } );
      ( {|{"op":"simulate","params":{"family":"db","dim":3,"degree":2,"full_duplex":false}}|},
        {
          Wire.id = Json.Null;
          op =
            Wire.Simulate
              {
                net = { Wire.family = "db"; dim = 3; degree = 2 };
                full_duplex = false;
              };
          timeout_ms = None;
          trace = None;
        } );
    ]
  in
  List.iter
    (fun (src, expected) ->
      match Json.of_string src with
      | Error e -> Alcotest.failf "golden frame did not parse: %s" e
      | Ok j -> (
          match Wire.parse_request j with
          | Ok req -> check src true (req = expected)
          | Error e -> Alcotest.failf "golden frame rejected: %s" e))
    cases

(* Forward-compatible trace envelope: requests round-trip with and
   without a context, foreign frames may carry the trace fields (or any
   unknown field) without breaking parsing, and the sampled flag only
   appears on the wire when it says something (false). *)
let test_wire_trace_context () =
  let module Trace = Gossip_util.Trace in
  let contexts =
    [
      { Trace.trace_id = String.make 32 'a'; parent_span_id = None; sampled = true };
      {
        Trace.trace_id = String.make 32 'b';
        parent_span_id = Some (String.make 16 'c');
        sampled = true;
      };
      {
        Trace.trace_id = String.make 32 'd';
        parent_span_id = Some (String.make 16 'e');
        sampled = false;
      };
    ]
  in
  List.iter
    (fun tr ->
      let req =
        { Wire.id = Json.Int 1; op = Wire.Ping; timeout_ms = None; trace = Some tr }
      in
      match Wire.parse_request (Wire.request_to_json req) with
      | Ok req' -> check "trace context round trip" true (req = req')
      | Error e -> Alcotest.failf "trace context round trip: %s" e)
    contexts;
  (* the wire stays lean: no "sampled" key unless the verdict is drop *)
  let emitted tr =
    Json.to_string
      (Wire.request_to_json
         { Wire.id = Json.Null; op = Wire.Ping; timeout_ms = None; trace = Some tr })
  in
  let has_sub s sub =
    let ls = String.length s and lu = String.length sub in
    let found = ref false in
    for i = 0 to ls - lu do
      if String.sub s i lu = sub then found := true
    done;
    !found
  in
  check "sampled omitted when true" false
    (has_sub (emitted (List.nth contexts 0)) "sampled");
  check "sampled present when false" true
    (has_sub (emitted (List.nth contexts 2)) "sampled");
  (* golden: a foreign traced frame *)
  let golden =
    {|{"op":"ping","trace_id":"00112233445566778899aabbccddeeff","parent_span_id":"0011223344556677","sampled":false}|}
  in
  (match Wire.parse_request (Result.get_ok (Json.of_string golden)) with
  | Ok { Wire.trace = Some tr; _ } ->
      check "golden trace id" true
        (tr.Trace.trace_id = "00112233445566778899aabbccddeeff");
      check "golden parent" true
        (tr.Trace.parent_span_id = Some "0011223344556677");
      check "golden sampled" false tr.Trace.sampled
  | _ -> Alcotest.fail "golden traced frame rejected");
  (* sampled omitted on the wire means keep *)
  (match
     Wire.parse_request
       (Result.get_ok
          (Json.of_string {|{"op":"ping","trace_id":"ff00000000000000000000000000aaaa"}|}))
   with
  | Ok { Wire.trace = Some tr; _ } -> check "sampled defaults true" true tr.Trace.sampled
  | _ -> Alcotest.fail "traced frame without sampled rejected");
  (* degraded contexts and unknown envelope fields must both fall back
     to "no context", never to bad_request — the regression that would
     break rolling upgrades *)
  let lenient src =
    match Wire.parse_request (Result.get_ok (Json.of_string src)) with
    | Ok { Wire.op = Wire.Ping; trace; _ } -> trace
    | Ok _ -> Alcotest.failf "parsed to the wrong op: %s" src
    | Error e -> Alcotest.failf "frame rejected (%s): %s" e src
  in
  check "empty trace_id ignored" true (lenient {|{"op":"ping","trace_id":""}|} = None);
  check "non-string trace_id ignored" true
    (lenient {|{"op":"ping","trace_id":17}|} = None);
  check "unknown envelope fields ignored" true
    (lenient {|{"op":"ping","shiny_new_field":{"deep":[1,2]},"priority":9}|} = None);
  check "orphan parent_span_id ignored" true
    (lenient {|{"op":"ping","parent_span_id":"0011223344556677"}|} = None)

let test_wire_rejections () =
  let reject src frag =
    let j = Result.get_ok (Json.of_string src) in
    match Wire.parse_request j with
    | Ok _ -> Alcotest.failf "accepted %s" src
    | Error msg ->
        check (Printf.sprintf "reject %s" src) true
          (let found = ref false in
           let fl = String.length frag and ml = String.length msg in
           for i = 0 to ml - fl do
             if String.sub msg i fl = frag then found := true
           done;
           !found)
  in
  reject {|[1,2,3]|} "object";
  reject {|{"params":{}}|} "op";
  reject {|{"op":"frobnicate"}|} "unknown operation";
  reject {|{"op":"bound","params":{"dim":4}}|} "family";
  reject {|{"op":"bound","params":{"family":"moebius","dim":4}}|} "unknown family";
  reject {|{"op":"bound","params":{"family":"cycle","dim":0}}|} "out of range";
  reject {|{"op":"bound","params":{"family":"cycle","dim":"big"}}|} "integer";
  reject {|{"op":"tables","params":{"ss":[2]}}|} "ss";
  reject {|{"op":"tables","params":{"ss":[]}}|} "non-empty";
  reject {|{"op":"simulate_implicit","params":{"family":"path","n":64}}|}
    "unknown implicit family";
  reject {|{"op":"simulate_implicit","params":{"n":64}}|} "family";
  reject {|{"op":"simulate_implicit","params":{"family":"cycle","n":10000000}}|}
    "out of range";
  reject {|{"op":"ping","timeout_ms":-5}|} "timeout_ms";
  reject {|{"op":"sleep"}|} "ms";
  reject {|{"op":"certify","params":{"protocol":"x","family":"cycle","dim":4}}|}
    "exclusive";
  reject {|{"op":"certify_faults","params":{"n":12}}|} "family";
  reject {|{"op":"certify_faults","params":{"family":"path","n":12}}|}
    "unknown implicit family";
  reject {|{"op":"certify_faults","params":{"family":"cycle","n":4}}|}
    "out of range";
  reject {|{"op":"certify_faults","params":{"family":"cycle","n":12,"k":7}}|}
    "out of range";
  reject
    {|{"op":"certify_faults","params":{"family":"cycle","n":12,"harden":"retry"}}|}
    "unknown transform"

let test_wire_response_roundtrip () =
  let ok = Wire.ok_response ~id:(Json.Int 3) (Json.Obj [ ("pong", Json.Bool true) ]) in
  (match Wire.parse_response ok with
  | Ok r ->
      check "ok id" true (r.Wire.resp_id = Json.Int 3);
      check_str "ok version" Core.Version.string r.Wire.resp_version;
      check "ok outcome" true
        (r.Wire.outcome = Ok (Json.Obj [ ("pong", Json.Bool true) ]))
  | Error e -> Alcotest.fail e);
  let err =
    Wire.error_response ~id:Json.Null ~code:Wire.Queue_full ~message:"full"
  in
  (match Wire.parse_response err with
  | Ok r ->
      check "err outcome" true (r.Wire.outcome = Error (Wire.Queue_full, "full"))
  | Error e -> Alcotest.fail e);
  (* every error code survives the string round trip *)
  List.iter
    (fun c ->
      check "code roundtrip" true
        (Wire.error_code_of_string (Wire.error_code_to_string c) = Some c))
    [
      Wire.Bad_request; Wire.Queue_full; Wire.Deadline_exceeded;
      Wire.Oversized_frame; Wire.Shutting_down; Wire.Internal;
    ]

let test_wire_framing () =
  let frames_of s ~max_bytes =
    let path = Filename.temp_file "wiretest" ".txt" in
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc;
    let ic = open_in_bin path in
    let rec go acc =
      match Wire.read_frame ic ~max_bytes with
      | Ok f -> go (Ok f :: acc)
      | Error e -> List.rev (Error e :: acc)
    in
    let r = go [] in
    close_in ic;
    Sys.remove path;
    r
  in
  check "plain lines" true
    (frames_of "a\nbb\n" ~max_bytes:10 = [ Ok "a"; Ok "bb"; Error Wire.Eof ]);
  check "crlf stripped" true
    (frames_of "a\r\n" ~max_bytes:10 = [ Ok "a"; Error Wire.Eof ]);
  check "unterminated final frame" true
    (frames_of "tail" ~max_bytes:10 = [ Ok "tail"; Error Wire.Eof ]);
  check "oversized detected" true
    (match frames_of "0123456789ABCDEF\n" ~max_bytes:8 with
    | Error Wire.Oversized :: _ -> true
    | _ -> false);
  check "empty line is empty frame" true
    (frames_of "\nx\n" ~max_bytes:10 = [ Ok ""; Ok "x"; Error Wire.Eof ])

(* --- dispatch --- *)

let test_dispatch_direct () =
  let d = Dispatch.create () in
  (match Dispatch.eval d Wire.Ping with
  | Ok j -> check "pong" true (Json.member "pong" j = Some (Json.Bool true))
  | Error _ -> Alcotest.fail "ping failed");
  (match Dispatch.eval d (Wire.Tables { s_max = 8; ss = [ 3; 4; 5; 6; 7; 8 ] }) with
  | Ok j ->
      check "tables matches direct library call" true
        (j = Gossip_bounds.Tables.to_json ~s_max:8 ~ss:[ 3; 4; 5; 6; 7; 8 ] ())
  | Error _ -> Alcotest.fail "tables failed");
  (* the oversize gate fires before any construction *)
  (match
     Dispatch.eval d
       (Wire.Bound
          {
            net = { Wire.family = "hypercube"; dim = 60; degree = 2 };
            s = None;
            full_duplex = false;
          })
   with
  | Error (Wire.Bad_request, msg) ->
      check "too-large message" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "oversized network must be rejected");
  (* unparsable inline protocol is a bad request, not an internal error *)
  match
    Dispatch.eval d
      (Wire.Certify { spec = Wire.Inline "not a protocol"; refine = false })
  with
  | Error (Wire.Bad_request, _) -> ()
  | _ -> Alcotest.fail "garbage protocol must be a bad_request"

let test_dispatch_simulate_implicit () =
  let d = Dispatch.create () in
  (match
     Dispatch.eval d
       (Wire.Simulate_implicit
          {
            family = "hypercube";
            n = 64;
            items = 8;
            checkpoint_every = 4;
            period = 64;
            seed = 1;
            degree = 2;
            full_duplex = true;
          })
   with
  | Ok j ->
      check "schema" true
        (Json.member "schema" j = Some (Json.Str "gossip-simulate/1"));
      check "completed" true
        (Json.member "completed" j = Some (Json.Bool true));
      check "n resolved" true (Json.member "n" j = Some (Json.Int 64));
      check "items echoed" true (Json.member "items" j = Some (Json.Int 8));
      check "checkpoints present" true
        (match Json.member "checkpoints" j with
        | Some (Json.List (_ :: _)) -> true
        | _ -> false);
      (* Q(6) full-duplex dimension sweep finishes in exactly dim rounds *)
      check "rounds = dim" true (Json.member "rounds" j = Some (Json.Int 6))
  | Error (_, msg) -> Alcotest.failf "simulate_implicit failed: %s" msg);
  (* the post-resolution gate: degree-16 de Bruijn rounds 131072 up to
     16^5 > 2^18 vertices *)
  match
    Dispatch.eval d
      (Wire.Simulate_implicit
         {
           family = "de-bruijn";
           n = 131072;
           items = 8;
           checkpoint_every = 0;
           period = 64;
           seed = 1;
           degree = 16;
           full_duplex = false;
         })
  with
  | Error (Wire.Bad_request, msg) ->
      check "oversized implicit rejected" true (String.length msg > 0)
  | _ -> Alcotest.fail "oversized implicit network must be rejected"

let test_dispatch_certify_faults () =
  let d = Dispatch.create () in
  let op ~harden =
    Wire.Certify_faults
      {
        family = "cycle";
        n = 12;
        k = 1;
        budget = 512;
        seed = 7;
        degree = 2;
        full_duplex = false;
        harden;
        cap = 0;
      }
  in
  (match Dispatch.eval d (op ~harden:"augment") with
  | Ok j -> (
      (match Json.member "certificate" j with
      | Some cert ->
          check "certificate schema" true
            (Json.member "schema" cert = Some (Json.Str "gossip-fault-cert/1"));
          check "augmented cycle certifies over the wire" true
            (Json.member "certified" cert = Some (Json.Bool true))
      | None -> Alcotest.fail "result lacks a certificate");
      match Json.member "hardening" j with
      | Some rep ->
          check "hardening report on the wire" true
            (Json.member "transform" rep = Some (Json.Str "augment"))
      | None -> Alcotest.fail "result lacks the hardening report")
  | Error (_, msg) -> Alcotest.failf "certify_faults failed: %s" msg);
  (* identical request: served from the context's fault_cert shelf *)
  let hits_before =
    match Dispatch.eval d Wire.Stats with
    | Ok s ->
        Option.value ~default:(-1)
          (Option.bind (Json.member "cache" s) (fun c ->
               Option.bind (Json.member "hits" c) Json.to_int_opt))
    | Error _ -> -1
  in
  (match Dispatch.eval d (op ~harden:"augment") with
  | Ok _ -> ()
  | Error (_, msg) -> Alcotest.failf "repeat certify_faults failed: %s" msg);
  let hits_after =
    match Dispatch.eval d Wire.Stats with
    | Ok s ->
        Option.value ~default:(-1)
          (Option.bind (Json.member "cache" s) (fun c ->
               Option.bind (Json.member "hits" c) Json.to_int_opt))
    | Error _ -> -1
  in
  check "repeat request is a cache hit" true (hits_after > hits_before);
  (* the unhardened scheme yields an uncertified verdict, not an error *)
  match Dispatch.eval d (op ~harden:"none") with
  | Ok j -> (
      match Json.member "certificate" j with
      | Some cert ->
          check "unhardened cycle fails over the wire" true
            (Json.member "certified" cert = Some (Json.Bool false));
          check "counterexample on the wire" true
            (match Json.member "counterexample" cert with
            | Some (Json.Obj _) -> true
            | _ -> false)
      | None -> Alcotest.fail "result lacks a certificate")
  | Error (_, msg) -> Alcotest.failf "unhardened certify_faults failed: %s" msg

(* --- metrics: golden JSON shapes on a hand-cranked clock --- *)

let test_metrics_json_shape () =
  let t_ref = ref 1_000_000_000L in
  let m =
    Metrics.create ~clock:(fun () -> !t_ref) ~workers:2 ~queue_capacity:8 ()
  in
  Metrics.conn_opened m;
  Metrics.set_queue_depth m 3;
  Metrics.observe m ~op:"ping" ~ok:true ~queue_wait_s:0.0001 ~service_s:0.001;
  Metrics.observe m ~op:"ping" ~ok:true ~queue_wait_s:0.0002 ~service_s:0.002;
  Metrics.observe m ~op:"bound" ~ok:false ~queue_wait_s:0.0 ~service_s:0.01;
  let j = Metrics.metrics_json m in
  check "schema" true (dig_str [ "schema" ] j = Some "gossip-metrics/1");
  check "version" true
    (dig_str [ "version" ] j = Some Core.Version.string);
  check "gauge queue_depth" true (dig_int [ "gauges"; "queue_depth" ] j = Some 3);
  check "gauge capacity" true (dig_int [ "gauges"; "queue_capacity" ] j = Some 8);
  check "gauge workers" true (dig_int [ "gauges"; "workers" ] j = Some 2);
  check "gauge connections" true (dig_int [ "gauges"; "connections" ] j = Some 1);
  check "totals ping" true
    (dig_int [ "totals"; "ops"; "ping"; "count" ] j = Some 2);
  check "totals ping errors" true
    (dig_int [ "totals"; "ops"; "ping"; "errors" ] j = Some 0);
  check "totals bound errors" true
    (dig_int [ "totals"; "ops"; "bound"; "errors" ] j = Some 1);
  List.iter
    (fun h ->
      check (h ^ " window counts ping") true
        (dig_int [ "windows"; h; "ops"; "ping"; "count" ] j = Some 2);
      check (h ^ " window has quantiles") true
        (match dig [ "windows"; h; "ops"; "ping"; "latency_ms"; "p95" ] j with
        | Some (Json.Float v) -> v > 0.0
        | _ -> false);
      check (h ^ " window has queue_wait summary") true
        (dig [ "windows"; h; "queue_wait_ms"; "p50" ] j <> None))
    [ "10s"; "1m"; "5m" ];
  (* six minutes later the 5m window has aged everything out; the
     cumulative totals have not *)
  t_ref := Int64.add !t_ref 360_000_000_000L;
  let j' = Metrics.metrics_json m in
  check "windows aged out" true
    (dig [ "windows"; "5m"; "ops"; "ping" ] j' = None);
  check "totals survive" true
    (dig_int [ "totals"; "ops"; "ping"; "count" ] j' = Some 2)

(* Metrics -> traces linkage: each op advertises the trace id of its
   worst-latency sampled request, and the exemplar ages out with the
   longest window rather than advertising a stale id forever. *)
let test_metrics_exemplar () =
  let t_ref = ref 1_000_000_000L in
  let m =
    Metrics.create ~clock:(fun () -> !t_ref) ~workers:1 ~queue_capacity:4 ()
  in
  (* untraced requests leave no exemplar *)
  Metrics.observe m ~op:"ping" ~ok:true ~queue_wait_s:0.0 ~service_s:0.001;
  check "no exemplar without a trace" true
    (dig [ "totals"; "ops"; "ping"; "exemplar" ] (Metrics.metrics_json m)
    = None);
  Metrics.observe m ~trace_id:"t-slow" ~op:"ping" ~ok:true ~queue_wait_s:0.001
    ~service_s:0.05;
  Metrics.observe m ~trace_id:"t-fast" ~op:"ping" ~ok:true ~queue_wait_s:0.0
    ~service_s:0.001;
  let j = Metrics.metrics_json m in
  check "exemplar is the worst latency" true
    (dig_str [ "totals"; "ops"; "ping"; "exemplar"; "trace_id" ] j
    = Some "t-slow");
  check "exemplar carries the latency" true
    (match dig [ "totals"; "ops"; "ping"; "exemplar"; "latency_ms" ] j with
    | Some (Json.Float v) -> Float.abs (v -. 51.0) < 1e-6
    | _ -> false);
  (* six minutes later the horizon has passed: a fresh traced request
     replaces the stale champion even though it is faster *)
  t_ref := Int64.add !t_ref 360_000_000_000L;
  check "stale exemplar not served" true
    (dig [ "totals"; "ops"; "ping"; "exemplar" ] (Metrics.metrics_json m)
    = None);
  Metrics.observe m ~trace_id:"t-new" ~op:"ping" ~ok:true ~queue_wait_s:0.0
    ~service_s:0.002;
  check "stale champion dethroned" true
    (dig_str
       [ "totals"; "ops"; "ping"; "exemplar"; "trace_id" ]
       (Metrics.metrics_json m)
    = Some "t-new")

let test_health_json_transitions () =
  let t_ref = ref 1_000_000_000L in
  let m =
    Metrics.create
      ~clock:(fun () -> !t_ref)
      ~wedge_ms:100 ~workers:2 ~queue_capacity:4 ()
  in
  let status () = dig_str [ "status" ] (Metrics.health_json m) in
  check "schema" true
    (dig_str [ "schema" ] (Metrics.health_json m) = Some "gossip-health/1");
  check "fresh server is ok" true (status () = Some "ok");
  check "healthy agrees" true (Metrics.healthy m);
  (* saturated queue degrades … *)
  Metrics.set_queue_depth m 4;
  check "saturated queue degrades" true (status () = Some "degraded");
  check "saturation reported" true
    (dig [ "queue"; "saturated" ] (Metrics.health_json m) = Some (Json.Bool true));
  Metrics.set_queue_depth m 1;
  check "drained queue recovers" true (status () = Some "ok");
  (* … and so does a worker stuck past the wedge threshold *)
  Metrics.worker_busy m 0;
  check "busy under threshold is ok" true (status () = Some "ok");
  t_ref := Int64.add !t_ref 200_000_000L;
  check "wedged worker degrades" true (status () = Some "degraded");
  check "wedged count" true
    (dig_int [ "wedged_workers" ] (Metrics.health_json m) = Some 1);
  Metrics.worker_idle m 0;
  check "idle worker recovers" true (status () = Some "ok")

let snapshot_with ~heap_mb ~minor_words =
  {
    Gossip_util.Resource.minor_words;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 1;
    major_collections = 0;
    compactions = 0;
    forced_major_collections = 0;
    heap_words = int_of_float (heap_mb *. 1024.0 *. 1024.0 /. 8.0);
    heap_mb;
    rss_mb = Some (heap_mb +. 4.0);
  }

let test_metrics_resource_and_heap_health () =
  let t_ref = ref 1_000_000_000L in
  let m =
    Metrics.create
      ~clock:(fun () -> !t_ref)
      ~max_heap_mb:100.0 ~workers:2 ~queue_capacity:8 ()
  in
  let status () = dig_str [ "status" ] (Metrics.health_json m) in
  (* before any sample: resource is null, heap check cannot fire *)
  check "no sample yet" true
    (dig [ "resource" ] (Metrics.metrics_json m) = Some Json.Null);
  check "no sample is healthy" true (status () = Some "ok");
  (* a modest heap is healthy and visible in metrics and health *)
  Metrics.note_resource m (snapshot_with ~heap_mb:40.0 ~minor_words:1e6);
  check "sample stored" true (Metrics.last_resource m <> None);
  check "heap in metrics" true
    (dig [ "resource"; "heap_mb" ] (Metrics.metrics_json m)
    = Some (Json.Float 40.0));
  check "heap in health" true
    (dig [ "heap_mb" ] (Metrics.health_json m) = Some (Json.Float 40.0));
  check "modest heap is ok" true (status () = Some "ok");
  (* allocation rate appears once two samples straddle a clock delta *)
  t_ref := Int64.add !t_ref 2_000_000_000L;
  Metrics.note_resource m (snapshot_with ~heap_mb:50.0 ~minor_words:5e6);
  (match dig [ "resource"; "alloc_words_per_s" ] (Metrics.metrics_json m) with
  | Some (Json.Float r) ->
      check "alloc rate ~2e6 w/s" true (abs_float (r -. 2e6) < 1e3)
  | _ -> Alcotest.fail "alloc_words_per_s missing after two samples");
  (* a runaway heap degrades health with an explicit reason … *)
  Metrics.note_resource m (snapshot_with ~heap_mb:150.0 ~minor_words:6e6);
  check "runaway heap degrades" true (status () = Some "degraded");
  check "healthy agrees" false (Metrics.healthy m);
  (match dig [ "reasons" ] (Metrics.health_json m) with
  | Some (Json.List reasons) ->
      check "a reason mentions the heap" true
        (List.exists
           (function
             | Json.Str s ->
                 String.length s >= 4 && String.sub s 0 4 = "heap"
             | _ -> false)
           reasons)
  | _ -> Alcotest.fail "degraded health carries no reasons");
  (* … and recovers when the collector brings it back down *)
  Metrics.note_resource m (snapshot_with ~heap_mb:60.0 ~minor_words:7e6);
  check "shrunk heap recovers" true (status () = Some "ok")

(* --- offline trace analysis on a hand-built trace --- *)

let test_trace_alloc_aggregation () =
  (* a fully instrumented trace aggregates; a mixed one is flagged *)
  let full =
    Trace_analysis.of_lines
      [
        {|{"ev":"span_begin","name":"a.hot","ts":"t","mono_ns":1000,"dom":0}|};
        {|{"ev":"span_end","name":"a.hot","ts":"t","mono_ns":2000,"dom":0,"dur_ns":1000,"alloc_words":5000}|};
        {|{"ev":"span_begin","name":"a.hot","ts":"t","mono_ns":3000,"dom":0}|};
        {|{"ev":"span_end","name":"a.hot","ts":"t","mono_ns":4000,"dom":0,"dur_ns":1000,"alloc_words":3000}|};
        {|{"ev":"span_begin","name":"b.cold","ts":"t","mono_ns":5000,"dom":0}|};
        {|{"ev":"span_end","name":"b.cold","ts":"t","mono_ns":6000,"dom":0,"dur_ns":1000,"alloc_words":10}|};
      ]
  in
  check "instrumented trace has no problems" true
    (Trace_analysis.problems full = []);
  let j = Trace_analysis.to_json full in
  check "alloc instrumented" true
    (dig [ "alloc"; "instrumented" ] j = Some (Json.Bool true));
  check "alloc total words" true
    (dig [ "alloc"; "total_words" ] j = Some (Json.Float 8010.0));
  (match dig [ "alloc"; "top" ] j with
  | Some (Json.List (first :: _)) ->
      check "hottest allocator first" true
        (dig_str [ "name" ] first = Some "a.hot");
      check "words per call" true
        (dig [ "words_per_call" ] first = Some (Json.Float 4000.0))
  | _ -> Alcotest.fail "alloc.top missing or empty");
  let mixed =
    Trace_analysis.of_lines
      [
        {|{"ev":"span_begin","name":"a.hot","ts":"t","mono_ns":1000,"dom":0}|};
        {|{"ev":"span_end","name":"a.hot","ts":"t","mono_ns":2000,"dom":0,"dur_ns":1000,"alloc_words":5000}|};
        {|{"ev":"span_begin","name":"a.hot","ts":"t","mono_ns":3000,"dom":0}|};
        {|{"ev":"span_end","name":"a.hot","ts":"t","mono_ns":4000,"dom":0,"dur_ns":1000}|};
      ]
  in
  check "mixed trace is a problem" true
    (List.exists
       (fun p ->
         String.length p > 0
         &&
         let has_sub s sub =
           let ls = String.length s and lu = String.length sub in
           let found = ref false in
           for i = 0 to ls - lu do
             if String.sub s i lu = sub then found := true
           done;
           !found
         in
         has_sub p "alloc_words")
       (Trace_analysis.problems mixed));
  let legacy =
    Trace_analysis.of_lines
      [
        {|{"ev":"span_begin","name":"a.hot","ts":"t","mono_ns":1000,"dom":0}|};
        {|{"ev":"span_end","name":"a.hot","ts":"t","mono_ns":2000,"dom":0,"dur_ns":1000}|};
      ]
  in
  check "pre-alloc traces are not flagged" true
    (Trace_analysis.problems legacy = []);
  check "legacy trace not instrumented" true
    (dig [ "alloc"; "instrumented" ] (Trace_analysis.to_json legacy)
    = Some (Json.Bool false))

let test_trace_analysis () =
  let lines =
    [
      (* request 1: admitted, one child span, a cache hit *)
      {|{"ev":"point","name":"serve.admit","ts":"t","mono_ns":1000,"dom":0,"req_id":1,"op":"bound","conn":1}|};
      {|{"ev":"span_begin","name":"serve.request","ts":"t","mono_ns":2000,"dom":1,"req_id":1,"op":"bound","conn":1,"queue_wait_ns":1000}|};
      {|{"ev":"span_begin","name":"dispatch.bound","ts":"t","mono_ns":2100,"dom":1,"req_id":1}|};
      {|{"ev":"point","name":"context.lookup","ts":"t","mono_ns":2200,"dom":1,"req_id":1,"outcome":"hit"}|};
      {|{"ev":"span_end","name":"dispatch.bound","ts":"t","mono_ns":2700,"dom":1,"dur_ns":600,"req_id":1}|};
      {|{"ev":"span_end","name":"serve.request","ts":"t","mono_ns":3000,"dom":1,"dur_ns":1000,"req_id":1,"op":"bound","conn":1,"queue_wait_ns":1000}|};
      (* request 2: admitted but no spans ever tagged with it *)
      {|{"ev":"point","name":"serve.admit","ts":"t","mono_ns":4000,"dom":0,"req_id":2,"op":"ping","conn":1}|};
      (* request 3: rejected at admission *)
      {|{"ev":"point","name":"serve.reject","ts":"t","mono_ns":5000,"dom":0,"req_id":3,"op":"ping","conn":2,"code":"queue_full"}|};
      (* an unbalanced span on another domain *)
      {|{"ev":"span_begin","name":"wedged.op","ts":"t","mono_ns":6000,"dom":2}|};
      "this line is not JSON";
    ]
  in
  let t = Trace_analysis.of_lines lines in
  let j = Trace_analysis.to_json t in
  check "report schema" true
    (dig_str [ "schema" ] j = Some "gossip-trace-report/2");
  check "parse errors counted" true
    (dig_int [ "lines"; "parse_errors" ] j = Some 1);
  check "requests seen" true (dig_int [ "requests"; "seen" ] j = Some 3);
  (* "complete" covers answered AND rejected requests: both tell the
     whole story of their request id *)
  check "complete" true (dig_int [ "requests"; "complete" ] j = Some 2);
  check "rejected" true (dig_int [ "requests"; "rejected" ] j = Some 1);
  check "zero-span" true (dig_int [ "requests"; "zero_span" ] j = Some 1);
  (* request 1's waterfall: the child span sits 100 ns after the
     request span began *)
  (match dig [ "slowest" ] j with
  | Some (Json.List (first :: _)) ->
      check "slowest is req 1" true (dig_str [ "req_id" ] first = Some "1");
      check "queue wait threaded" true
        (match dig [ "queue_wait_ms" ] first with
        | Some (Json.Float v) -> Float.abs (v -. 0.001) < 1e-12
        | _ -> false);
      check "cache hit counted" true (dig_int [ "cache_hits" ] first = Some 1);
      (match dig [ "waterfall" ] first with
      | Some (Json.List [ span ]) ->
          check "child span name" true
            (dig_str [ "span" ] span = Some "dispatch.bound");
          check "child offset from request start" true
            (match dig [ "offset_ms" ] span with
            | Some (Json.Float v) -> Float.abs (v -. 1e-4) < 1e-12
            | _ -> false)
      | _ -> Alcotest.fail "expected one waterfall entry")
  | _ -> Alcotest.fail "expected a non-empty slowest list");
  (* problems: the zero-span request and the unbalanced span *)
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let problems = Trace_analysis.problems t in
  check "zero-span flagged" true
    (List.exists (fun p -> contains p "produced no serve.request span") problems);
  check "unbalanced flagged" true
    (List.exists (fun p -> contains p "unbalanced span") problems);
  (* a clean trace has none *)
  let clean =
    Trace_analysis.of_lines
      [
        {|{"ev":"point","name":"serve.admit","ts":"t","mono_ns":1,"dom":0,"req_id":1,"op":"ping","conn":1}|};
        {|{"ev":"span_begin","name":"serve.request","ts":"t","mono_ns":2,"dom":1,"req_id":1,"op":"ping","conn":1}|};
        {|{"ev":"span_end","name":"serve.request","ts":"t","mono_ns":9,"dom":1,"dur_ns":7,"req_id":1,"op":"ping","conn":1,"queue_wait_ns":1}|};
      ]
  in
  check "clean trace has no problems" true (Trace_analysis.problems clean = [])

(* --- end-to-end --- *)

let fresh_socket_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gserve-%d-%d.sock" (Unix.getpid ()) !counter)

let with_server ?dispatch ?(workers = 2) ?(queue_capacity = 16)
    ?(max_frame_bytes = Wire.default_max_frame_bytes) ?access_log
    ?(chaos = None) f =
  let path = fresh_socket_path () in
  let listen = Server.Unix_socket path in
  let config =
    {
      (Server.default_config ~listen) with
      Server.workers;
      queue_capacity;
      max_frame_bytes;
      access_log;
      chaos;
    }
  in
  let server = Server.create ?dispatch config in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.shutdown server)
    (fun () -> f server listen)

let expect_ok = function
  | Ok { Wire.outcome = Ok result; _ } -> result
  | Ok { Wire.outcome = Error (code, msg); _ } ->
      Alcotest.failf "server error %s: %s" (Wire.error_code_to_string code) msg
  | Error e -> Alcotest.failf "transport error: %s" e

(* The distributed stitch on a hand-built two-node fleet trace: the
   router's clock is the reference and the shard's monotonic clock runs
   exactly 1 ms behind, so every derived number is checkable by hand.

     router r1:  serve.request SR [0 .. 10000]ns
                   router.forward H (parent SR) [1000 .. 9000]
     shard  s1:  serve.request SS (parent H) [2000 .. 8000] router time,
                   i.e. [-998000 .. -992000] on its own clock
                   serve.eval (parent SS) [3000 .. 7000] router time

   Bracketing the shard request inside the hop yields the +1 ms offset;
   hop overhead is 8000 - 6000 = 2000 ns. *)
let test_trace_stitch () =
  let lines =
    [
      {|{"ev":"span_begin","name":"serve.request","ts":100.0,"mono_ns":0,"dom":1,"node":"r1","req_id":"r1-r1","op":"tables","conn":"r1-c1","trace_id":"TID","span_id":"aaaaaaaaaaaaaaaa"}|};
      {|{"ev":"span_begin","name":"router.forward","ts":100.0,"mono_ns":1000,"dom":1,"node":"r1","trace_id":"TID","span_id":"bbbbbbbbbbbbbbbb","parent_span_id":"aaaaaaaaaaaaaaaa"}|};
      {|{"ev":"span_begin","name":"serve.request","ts":100.0,"mono_ns":-998000,"dom":0,"node":"s1","req_id":"s1-r1","op":"tables","conn":"s1-c1","trace_id":"TID","span_id":"cccccccccccccccc","parent_span_id":"bbbbbbbbbbbbbbbb"}|};
      {|{"ev":"span_begin","name":"serve.eval","ts":100.0,"mono_ns":-997000,"dom":0,"node":"s1","trace_id":"TID","parent_span_id":"cccccccccccccccc"}|};
      {|{"ev":"span_end","name":"serve.eval","ts":100.0,"mono_ns":-993000,"dur_ns":4000,"dom":0,"node":"s1","trace_id":"TID","parent_span_id":"cccccccccccccccc"}|};
      {|{"ev":"span_end","name":"serve.request","ts":100.0,"mono_ns":-992000,"dur_ns":6000,"dom":0,"node":"s1","req_id":"s1-r1","op":"tables","conn":"s1-c1","queue_wait_ns":100,"trace_id":"TID","span_id":"cccccccccccccccc","parent_span_id":"bbbbbbbbbbbbbbbb"}|};
      {|{"ev":"span_end","name":"router.forward","ts":100.0,"mono_ns":9000,"dur_ns":8000,"dom":1,"node":"r1","trace_id":"TID","span_id":"bbbbbbbbbbbbbbbb","parent_span_id":"aaaaaaaaaaaaaaaa"}|};
      {|{"ev":"span_end","name":"serve.request","ts":100.0,"mono_ns":10000,"dur_ns":10000,"dom":1,"node":"r1","req_id":"r1-r1","op":"tables","conn":"r1-c1","queue_wait_ns":200,"trace_id":"TID","span_id":"aaaaaaaaaaaaaaaa"}|};
    ]
  in
  let t = Trace_analysis.of_lines lines in
  check "stitched trace is sound" true (Trace_analysis.problems t = []);
  check "full linkage" true (Trace_analysis.linkage_coverage t = 1.0);
  let j = Trace_analysis.to_json t in
  check "graph spans" true (dig_int [ "tracing"; "spans" ] j = Some 4);
  check "one trace" true (dig_int [ "tracing"; "traces" ] j = Some 1);
  check "all parents resolve" true
    (dig_int [ "tracing"; "linked" ] j = Some 3
    && dig_int [ "tracing"; "orphans" ] j = Some 0);
  check "no orphan hops" true
    (dig_int [ "tracing"; "orphan_router_hops" ] j = Some 0);
  (* the recovered clock offset: shard readings + 1 ms = router readings *)
  (match dig [ "tracing"; "clock_offsets" ] j with
  | Some (Json.List [ row ]) ->
      check "offset edge r1 -> s1" true
        (dig_str [ "parent_node" ] row = Some "r1"
        && dig_str [ "child_node" ] row = Some "s1");
      check "offset is +1 ms" true
        (match dig [ "offset_ms" ] row with
        | Some (Json.Float v) -> Float.abs (v -. 1.0) < 1e-9
        | _ -> false);
      check "one bracketing pair" true (dig_int [ "pairs" ] row = Some 1)
  | _ -> Alcotest.fail "expected exactly one clock-offset edge");
  (* hop overhead: 8000 ns forward minus 6000 ns downstream request *)
  check "one stitched hop" true
    (dig_int [ "tracing"; "hops"; "count" ] j = Some 1);
  check "hop overhead 0.002 ms" true
    (match dig [ "tracing"; "hops"; "overhead_ms"; "max" ] j with
    | Some (Json.Float v) -> Float.abs (v -. 0.002) < 1e-9
    | _ -> false);
  (* the cross-node waterfall, aligned onto the router's clock *)
  (match dig [ "tracing"; "slowest" ] j with
  | Some (Json.List [ tr ]) ->
      check "trace id" true (dig_str [ "trace_id" ] tr = Some "TID");
      check "root is the router request" true
        (dig_str [ "root_node" ] tr = Some "r1"
        && dig_str [ "root_span" ] tr = Some "serve.request");
      check "total is the root duration" true
        (match dig [ "total_ms" ] tr with
        | Some (Json.Float v) -> Float.abs (v -. 0.01) < 1e-9
        | _ -> false);
      (match dig [ "waterfall" ] tr with
      | Some (Json.List rows) ->
          let expect =
            [
              ("r1", "serve.request", 0.0);
              ("r1", "router.forward", 0.001);
              ("s1", "serve.request", 0.002);
              ("s1", "serve.eval", 0.003);
            ]
          in
          check "four spans in order" true (List.length rows = 4);
          List.iter2
            (fun row (node, span, off) ->
              check (Printf.sprintf "waterfall row %s/%s" node span) true
                (dig_str [ "node" ] row = Some node
                && dig_str [ "span" ] row = Some span
                &&
                match dig [ "offset_ms" ] row with
                | Some (Json.Float v) -> Float.abs (v -. off) < 1e-9
                | _ -> false);
              (* monotonic alignment covered both nodes: no wall-clock
                 fallback marker anywhere *)
              check "aligned on monotonic clocks" true
                (dig [ "clock" ] row = None))
            rows expect
      | _ -> Alcotest.fail "expected a waterfall list")
  | _ -> Alcotest.fail "expected exactly one stitched trace");
  (* a hop whose parent was never recorded arms both stitch gates *)
  let orphan =
    Trace_analysis.of_lines
      [
        {|{"ev":"span_begin","name":"router.forward","ts":1.0,"mono_ns":0,"dom":0,"node":"r1","trace_id":"T2","span_id":"eeeeeeeeeeeeeeee","parent_span_id":"ffffffffffffffff"}|};
        {|{"ev":"span_end","name":"router.forward","ts":1.0,"mono_ns":500,"dur_ns":500,"dom":0,"node":"r1","trace_id":"T2","span_id":"eeeeeeeeeeeeeeee","parent_span_id":"ffffffffffffffff"}|};
      ]
  in
  check "orphan linkage is zero" true
    (Trace_analysis.linkage_coverage orphan = 0.0);
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let ps = Trace_analysis.problems orphan in
  check "low linkage flagged" true
    (List.exists (fun p -> contains p "trace linkage") ps);
  check "orphan hop flagged" true
    (List.exists (fun p -> contains p "orphan router.forward") ps)

let test_e2e_basic_ops () =
  with_server (fun server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let pong = expect_ok (Client.call c ~id:(Json.Int 1) Wire.Ping) in
          check "pong" true (Json.member "pong" pong = Some (Json.Bool true));
          let v = expect_ok (Client.call c Wire.Version) in
          check "version op" true
            (Json.member "version" v = Some (Json.Str Core.Version.string));
          (* tables over the wire = the direct library call *)
          let t =
            expect_ok
              (Client.call c (Wire.Tables { s_max = 8; ss = [ 3; 4; 5; 6; 7; 8 ] }))
          in
          check "tables = direct" true
            (t = Gossip_bounds.Tables.to_json ~s_max:8 ~ss:[ 3; 4; 5; 6; 7; 8 ] ());
          (* bound over the wire = the direct oracle *)
          let g = Gossip_topology.Families.hypercube 4 in
          let direct =
            Gossip_bounds.Oracle.lower_bounds g
              ~mode:Gossip_protocol.Protocol.Half_duplex ~s:(Some 4)
          in
          let b =
            expect_ok
              (Client.call c
                 (Wire.Bound
                    {
                      net = { Wire.family = "hypercube"; dim = 4; degree = 2 };
                      s = Some 4;
                      full_duplex = false;
                    }))
          in
          check "bound sound = direct" true
            (Json.member "sound" b = Some (Json.Int direct.Gossip_bounds.Oracle.sound));
          check "bound diameter = direct" true
            (Json.member "diameter" b
            = Some (Json.Int direct.Gossip_bounds.Oracle.diameter));
          (* the repeat is a cache hit *)
          let hits () =
            (Core.Context.stats (Dispatch.context (Server.dispatch server)))
              .Core.Context.hits
          in
          let stats0 = hits () in
          let _again =
            expect_ok
              (Client.call c
                 (Wire.Bound
                    {
                      net = { Wire.family = "hypercube"; dim = 4; degree = 2 };
                      s = Some 4;
                      full_duplex = false;
                    }))
          in
          check "repeat query hits the cache" true (hits () > stats0)))

let test_e2e_simulate_matches_direct () =
  with_server (fun _server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let result =
            expect_ok
              (Client.call c
                 (Wire.Simulate
                    {
                      net = { Wire.family = "hypercube"; dim = 3; degree = 2 };
                      full_duplex = false;
                    }))
          in
          let g = Gossip_topology.Families.hypercube 3 in
          let sys = Gossip_protocol.Builders.edge_coloring_half_duplex g in
          let direct = Core.Analysis.certify_protocol sys in
          let run = Gossip_simulate.Engine.gossip_run sys in
          check "simulate = direct library call" true
            (result
            = Core.Analysis.protocol_report_to_json
                ~coverage:run.Gossip_simulate.Engine.curve direct)))

let test_e2e_malformed_frame_connection_survives () =
  with_server (fun _server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.send_line c "this is not json";
          (match Client.recv c with
          | Ok { Wire.outcome = Error (Wire.Bad_request, _); _ } -> ()
          | _ -> Alcotest.fail "expected bad_request");
          (* unknown op: id still echoed *)
          Client.send_line c {|{"id":42,"op":"frobnicate"}|};
          (match Client.recv c with
          | Ok { Wire.resp_id = Json.Int 42; outcome = Error (Wire.Bad_request, _); _ } ->
              ()
          | _ -> Alcotest.fail "expected bad_request with echoed id");
          (* the connection survived both *)
          let pong = expect_ok (Client.call c Wire.Ping) in
          check "still alive" true
            (Json.member "pong" pong = Some (Json.Bool true))))

let test_e2e_oversized_frame_closes_connection () =
  with_server ~max_frame_bytes:128 (fun _server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.send_line c (String.make 300 'x');
          (match Client.recv c with
          | Ok { Wire.outcome = Error (Wire.Oversized_frame, _); _ } -> ()
          | other ->
              Alcotest.failf "expected oversized_frame, got %s"
                (match other with
                | Ok _ -> "another reply"
                | Error e -> "transport: " ^ e));
          (* the stream is unframed from here: server closes *)
          match Client.recv c with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "connection should be closed"))

let test_e2e_deadline_exceeded () =
  with_server ~workers:1 (fun _server listen ->
      let a = Client.connect_retry listen in
      let b = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () ->
          Client.close a;
          Client.close b)
        (fun () ->
          (* occupy the only worker … *)
          Client.send_line a {|{"id":"slow","op":"sleep","params":{"ms":400}}|};
          Thread.delay 0.1;
          (* … so this deadline has long expired when a worker frees up *)
          match Client.call b ~id:(Json.Int 9) ~timeout_ms:1 Wire.Ping with
          | Ok { Wire.resp_id = Json.Int 9; outcome = Error (Wire.Deadline_exceeded, _); _ } ->
              (* the slow request itself still completed *)
              (match Client.recv a with
              | Ok { Wire.resp_id = Json.Str "slow"; outcome = Ok _; _ } -> ()
              | _ -> Alcotest.fail "sleep reply lost")
          | other ->
              Alcotest.failf "expected deadline_exceeded, got %s"
                (match other with
                | Ok { Wire.outcome = Ok _; _ } -> "success"
                | Ok { Wire.outcome = Error (c, _); _ } ->
                    Wire.error_code_to_string c
                | Error e -> "transport: " ^ e)))

let test_e2e_queue_full () =
  with_server ~workers:1 ~queue_capacity:1 (fun _server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* worker takes the first sleep; the second fills the queue *)
          Client.send_line c {|{"id":1,"op":"sleep","params":{"ms":400}}|};
          Thread.delay 0.1;
          Client.send_line c {|{"id":2,"op":"sleep","params":{"ms":10}}|};
          Thread.delay 0.05;
          Client.send_line c {|{"id":3,"op":"ping"}|};
          (* the rejection is written by the reader thread immediately,
             out of order w.r.t. the queued work *)
          match Client.recv c with
          | Ok { Wire.resp_id = Json.Int 3; outcome = Error (Wire.Queue_full, _); _ } ->
              (match Client.recv c with
              | Ok { Wire.resp_id = Json.Int 1; outcome = Ok _; _ } -> (
                  match Client.recv c with
                  | Ok { Wire.resp_id = Json.Int 2; outcome = Ok _; _ } -> ()
                  | _ -> Alcotest.fail "queued sleep reply lost")
              | _ -> Alcotest.fail "running sleep reply lost")
          | other ->
              Alcotest.failf "expected queue_full for id 3, got %s"
                (match other with
                | Ok { Wire.outcome = Ok _; _ } -> "a success"
                | Ok { Wire.outcome = Error (code, _); _ } ->
                    Wire.error_code_to_string code
                | Error e -> "transport: " ^ e)))

let test_e2e_concurrent_clients () =
  with_server ~workers:3 ~queue_capacity:64 (fun _server listen ->
      let clients = 4 and per_client = 20 in
      let failures = ref 0 in
      let mu = Mutex.create () in
      let ops i =
        match i mod 3 with
        | 0 -> Wire.Ping
        | 1 -> Wire.Tables { s_max = 8; ss = [ 3; 4; 5; 6; 7; 8 ] }
        | _ ->
            Wire.Bound
              {
                net = { Wire.family = "cycle"; dim = 16; degree = 2 };
                s = Some 4;
                full_duplex = false;
              }
      in
      let expected_tables =
        Gossip_bounds.Tables.to_json ~s_max:8 ~ss:[ 3; 4; 5; 6; 7; 8 ] ()
      in
      let worker cidx () =
        let c = Client.connect_retry listen in
        for i = 0 to per_client - 1 do
          let id = Json.Int ((cidx * 1000) + i) in
          match Client.call c ~id (ops i) with
          | Ok { Wire.resp_id; outcome = Ok result; _ } ->
              let good =
                resp_id = id
                && (i mod 3 <> 1 || result = expected_tables)
              in
              if not good then begin
                Mutex.lock mu;
                incr failures;
                Mutex.unlock mu
              end
          | _ ->
              Mutex.lock mu;
              incr failures;
              Mutex.unlock mu
        done;
        Client.close c
      in
      let ts = List.init clients (fun c -> Thread.create (worker c) ()) in
      List.iter Thread.join ts;
      check_int "no dropped or garbled replies" 0 !failures)

let test_e2e_metrics_ops () =
  (* span aggregates only accumulate while instrumentation is on *)
  let was = Gossip_util.Instrument.enabled () in
  Gossip_util.Instrument.set_enabled true;
  Fun.protect ~finally:(fun () -> Gossip_util.Instrument.set_enabled was)
  @@ fun () ->
  with_server (fun _server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* generate some traffic, then read the counters back *)
          for i = 1 to 5 do
            ignore (expect_ok (Client.call c ~id:(Json.Int i) Wire.Ping))
          done;
          let m = expect_ok (Client.call c Wire.Metrics) in
          check "metrics schema" true
            (dig_str [ "schema" ] m = Some "gossip-metrics/1");
          check "five pings counted" true
            (match dig_int [ "totals"; "ops"; "ping"; "count" ] m with
            | Some n -> n >= 5
            | None -> false);
          check "10s window sees them" true
            (match dig_int [ "windows"; "10s"; "ops"; "ping"; "count" ] m with
            | Some n -> n >= 5
            | None -> false);
          (* another round moves the totals *)
          ignore (expect_ok (Client.call c Wire.Ping));
          let m2 = expect_ok (Client.call c Wire.Metrics) in
          check "totals advance" true
            (dig_int [ "totals"; "ops"; "ping"; "count" ] m2
            > dig_int [ "totals"; "ops"; "ping"; "count" ] m);
          (* the metrics op itself is counted (answered inline) *)
          check "metrics op counted" true
            (match dig_int [ "totals"; "ops"; "metrics"; "count" ] m2 with
            | Some n -> n >= 1
            | None -> false);
          let h = expect_ok (Client.call c Wire.Health) in
          check "health schema" true
            (dig_str [ "schema" ] h = Some "gossip-health/1");
          check "idle server healthy" true (dig_str [ "status" ] h = Some "ok");
          let s = expect_ok (Client.call c Wire.Spans) in
          check "spans schema" true
            (dig_str [ "schema" ] s = Some "gossip-spans/1");
          check "serve.request span listed" true
            (match dig [ "spans" ] s with
            | Some (Json.List spans) ->
                List.exists
                  (fun sp -> dig_str [ "name" ] sp = Some "serve.request")
                  spans
            | _ -> false)))

let test_e2e_health_degrades_under_saturation () =
  (* one worker, one queue slot: a running sleep plus a queued sleep
     saturate the server.  The health probe must still be answered —
     inline, bypassing the full queue — and must say "degraded". *)
  with_server ~workers:1 ~queue_capacity:1 (fun _server listen ->
      let a = Client.connect_retry listen in
      let b = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () ->
          Client.close a;
          Client.close b)
        (fun () ->
          Client.send_line a {|{"id":1,"op":"sleep","params":{"ms":400}}|};
          Thread.delay 0.1;
          Client.send_line a {|{"id":2,"op":"sleep","params":{"ms":10}}|};
          Thread.delay 0.05;
          let h = expect_ok (Client.call b Wire.Health) in
          check "degraded under saturation" true
            (dig_str [ "status" ] h = Some "degraded");
          check "saturation is the reason" true
            (dig [ "queue"; "saturated" ] h = Some (Json.Bool true));
          (* after the backlog drains the same probe says ok *)
          (match (Client.recv a, Client.recv a) with
          | Ok _, Ok _ -> ()
          | _ -> Alcotest.fail "sleep replies lost");
          let h' = expect_ok (Client.call b Wire.Health) in
          check "recovers after drain" true
            (dig_str [ "status" ] h' = Some "ok")))

let test_e2e_access_log_shape () =
  let log = Filename.temp_file "gserve-access" ".jsonl" in
  with_server ~access_log:log (fun server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ignore (expect_ok (Client.call c ~id:(Json.Int 1) Wire.Ping));
          ignore (expect_ok (Client.call c ~id:(Json.Str "v") Wire.Version));
          Client.send_line c {|{"id":42,"op":"frobnicate"}|};
          ignore (Client.recv c));
      (* shutdown flushes and closes the log *)
      Server.shutdown server;
      let ic = open_in log in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      Sys.remove log;
      let lines = List.rev !lines in
      check "one line per answered request" true (List.length lines >= 2);
      List.iter
        (fun line ->
          match Json.of_string line with
          | Error e -> Alcotest.failf "access log line not JSON (%s): %s" e line
          | Ok j ->
              check "ts" true
                (match dig [ "ts" ] j with
                | Some (Json.Float v) -> v > 0.0
                | _ -> false);
              (* ids are strings since the tracing PR: "r42", or
                 "s1-r42" when the server is a named cluster node *)
              check "req_id" true
                (match dig_str [ "req_id" ] j with
                | Some s -> String.length s > 1 && s.[0] = 'r'
                | None -> false);
              check "conn" true
                (match dig_str [ "conn" ] j with
                | Some s -> String.length s > 1 && s.[0] = 'c'
                | None -> false);
              check "op" true (dig_str [ "op" ] j <> None);
              check "status" true (dig_str [ "status" ] j <> None);
              check "queue_wait_ms" true (dig [ "queue_wait_ms" ] j <> None);
              check "service_ms" true (dig [ "service_ms" ] j <> None))
        lines;
      let status_of line =
        match Json.of_string line with
        | Ok j -> dig_str [ "status" ] j
        | Error _ -> None
      in
      check "ok statuses present" true
        (List.exists (fun l -> status_of l = Some "ok") lines);
      check "the bad request is logged too" true
        (List.exists (fun l -> status_of l = Some "bad_request") lines))

let test_e2e_shutdown_op () =
  with_server (fun server listen ->
      let c = Client.connect_retry listen in
      (match Client.call c ~id:(Json.Int 1) Wire.Shutdown with
      | Ok { Wire.outcome = Ok j; _ } ->
          check "ack" true (Json.member "stopping" j = Some (Json.Bool true))
      | _ -> Alcotest.fail "shutdown not acknowledged");
      Client.close c;
      check "stop requested" true (Server.stop_requested server);
      (* drain (idempotent with the with_server finally) *)
      Server.shutdown server;
      (* the socket is gone: new connections fail *)
      match Client.connect listen with
      | exception Unix.Unix_error _ -> ()
      | c2 ->
          Client.close c2;
          Alcotest.fail "connect after shutdown should fail")

(* --- robustness: chaos plans, supervision, resilient client --- *)

let test_chaos_plan_and_decisions () =
  check "all-zero plan compiles out" true (Chaos.make () = None);
  check "explicit zeros too" true
    (Chaos.make ~seed:9 ~drop:0.0 ~corrupt:0.0 ~delay:0.0 ~panic:0.0
       ~dispatch_latency:0.0 ()
    = None);
  let plan =
    match
      Chaos.make ~seed:7 ~drop:0.25 ~corrupt:0.2 ~delay:0.25 ~delay_ms:3
        ~panic:0.15 ~dispatch_latency:0.3 ~dispatch_latency_ms:2 ()
    with
    | Some p -> p
    | None -> Alcotest.fail "plan with nonzero probabilities must be Some"
  in
  (* pure in (seed, req_id): recomputing yields identical decisions *)
  for req_id = 1 to 200 do
    check "decision deterministic" true
      (Chaos.decide plan ~req_id = Chaos.decide plan ~req_id)
  done;
  (* over enough requests every configured fault appears, magnitudes are
     the configured ones, and reply faults are mutually exclusive by
     construction (the variant holds at most one) *)
  let drops = ref 0 and corrupts = ref 0 and delays = ref 0 in
  let panics = ref 0 and stalls = ref 0 and clean = ref 0 in
  for req_id = 1 to 2000 do
    let d = Chaos.decide plan ~req_id in
    (match d.Chaos.reply with
    | Some Chaos.Drop -> incr drops
    | Some Chaos.Corrupt -> incr corrupts
    | Some (Chaos.Delay_ms ms) ->
        incr delays;
        check_int "delay magnitude" 3 ms
    | None -> incr clean);
    if d.Chaos.panic then incr panics;
    if d.Chaos.dispatch_latency_ms > 0 then begin
      incr stalls;
      check_int "stall magnitude" 2 d.Chaos.dispatch_latency_ms
    end
  done;
  List.iter
    (fun (name, count) -> check (name ^ " occurs") true (!count > 0))
    [
      ("drop", drops);
      ("corrupt", corrupts);
      ("delay", delays);
      ("panic", panics);
      ("stall", stalls);
      ("clean request", clean);
    ];
  (* a different seed is a different plan *)
  let plan' =
    Option.get
      (Chaos.make ~seed:8 ~drop:0.25 ~corrupt:0.2 ~delay:0.25 ~delay_ms:3
         ~panic:0.15 ~dispatch_latency:0.3 ~dispatch_latency_ms:2 ())
  in
  let differs = ref false in
  for req_id = 1 to 200 do
    if Chaos.decide plan ~req_id <> Chaos.decide plan' ~req_id then
      differs := true
  done;
  check "seed matters" true !differs;
  let invalid label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  invalid "probability > 1" (fun () -> Chaos.make ~drop:1.5 ());
  invalid "negative probability" (fun () -> Chaos.make ~panic:(-0.1) ());
  invalid "reply faults sum > 1" (fun () ->
      Chaos.make ~drop:0.6 ~corrupt:0.3 ~delay:0.2 ());
  invalid "negative magnitude" (fun () ->
      Chaos.make ~delay:0.1 ~delay_ms:(-1) ())

let test_supervisor_respawns_crashed_workers () =
  let stopping = Atomic.make false in
  let crashes_left = Atomic.make 2 in
  let restarted = Atomic.make 0 in
  (* the first two bodies crash immediately; their replacements block
     like a well-behaved worker until told to stop *)
  let body _slot =
    if Atomic.fetch_and_add crashes_left (-1) > 0 then
      failwith "injected crash"
    else
      while not (Atomic.get stopping) do
        Thread.delay 0.005
      done
  in
  let sup =
    Supervisor.start ~workers:2 ~heartbeat_ms:10
      ~stopping:(fun () -> Atomic.get stopping)
      ~on_restart:(fun _slot -> Atomic.incr restarted)
      ~on_missing:(fun _ -> ())
      ~body ()
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    (Supervisor.restarts sup < 2 || Supervisor.alive sup < 2)
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  check "both crashes respawned" true (Supervisor.restarts sup >= 2);
  check_int "pool is whole again" 2 (Supervisor.alive sup);
  check_int "on_restart fired once per respawn" (Supervisor.restarts sup)
    (Atomic.get restarted);
  Atomic.set stopping true;
  Supervisor.shutdown sup

let test_queue_domain_shutdown_race () =
  (* Four pushing domains race a concurrent [close].  The contract under
     test: every push either returned [`Ok] and its item is drained
     after close, or was refused with [`Closed] — accepted work is never
     dropped, refused work is never admitted, and nothing hangs. *)
  for round = 0 to 4 do
    let q = Queue_.create ~capacity:8192 in
    let domains = 4 and per = 500 in
    let pushers =
      List.init domains (fun d ->
          Domain.spawn (fun () ->
              let accepted = ref [] in
              let fulls = ref 0 in
              for i = 0 to per - 1 do
                let item = (d * per) + i in
                match Queue_.try_push q item with
                | `Ok -> accepted := item :: !accepted
                | `Closed -> ()
                | `Full -> incr fulls
              done;
              (!accepted, !fulls)))
    in
    (* close somewhere in the middle of the pushing, at a slightly
       different point each round *)
    Thread.delay (0.0002 *. float_of_int round);
    Queue_.close q;
    let results = List.map Domain.join pushers in
    let accepted = List.concat_map fst results in
    let fulls = List.fold_left (fun a (_, f) -> a + f) 0 results in
    check_int "capacity was never the limiter" 0 fulls;
    let drained = ref [] in
    let rec drain () =
      match Queue_.pop q with
      | Some x ->
          drained := x :: !drained;
          drain ()
      | None -> ()
    in
    drain ();
    let sort = List.sort compare in
    check "accepted and drained agree exactly" true
      (sort accepted = sort !drained);
    check "closed for good" true (Queue_.try_push q (-1) = `Closed)
  done

let test_e2e_write_error_counted_worker_survives () =
  with_server (fun _server listen ->
      (* admit a slow job, then vanish before the reply can be written *)
      let doomed = Client.connect_retry listen in
      Client.send_line doomed {|{"id":1,"op":"sleep","params":{"ms":150}}|};
      Thread.delay 0.05;
      Client.close doomed;
      (* let the worker finish the sleep and hit the dead descriptor *)
      Thread.delay 0.4;
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let pong = expect_ok (Client.call c Wire.Ping) in
          check "worker survived the failed write" true
            (Json.member "pong" pong = Some (Json.Bool true));
          let m = expect_ok (Client.call c Wire.Metrics) in
          check "write error counted" true
            (match dig_int [ "gauges"; "write_errors" ] m with
            | Some n -> n >= 1
            | None -> false);
          check "a write error is not a worker death" true
            (dig_int [ "gauges"; "worker_restarts" ] m = Some 0);
          (* health stays ok: a hung-up peer is the peer's problem *)
          let h = expect_ok (Client.call c Wire.Health) in
          check "healthy despite write error" true
            (dig_str [ "status" ] h = Some "ok")))

(* Poll health over a raw client until the pool reports ok, or fail. *)
let wait_healthy c ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let h = expect_ok (Client.call c Wire.Health) in
    if dig_str [ "status" ] h = Some "ok" then h
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "health did not recover: %s" (Json.to_string h)
    else begin
      Thread.delay 0.1;
      go ()
    end
  in
  go ()

let test_e2e_chaos_panic_respawn_and_recovery () =
  with_server
    ~chaos:(Chaos.make ~seed:1 ~panic:1.0 ())
    (fun _server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* every queued op panics its worker — yet every request is
             still answered, as internal_error, by the barrier *)
          for i = 1 to 4 do
            match Client.call c ~id:(Json.Int i) Wire.Ping with
            | Ok { Wire.resp_id = Json.Int j; outcome = Error (Wire.Internal, msg); _ }
              when j = i ->
                check "panic is named in the error" true
                  (String.length msg > 0)
            | other ->
                Alcotest.failf "expected internal_error for ping %d, got %s" i
                  (match other with
                  | Ok { Wire.outcome = Ok _; _ } -> "success"
                  | Ok { Wire.outcome = Error (code, _); _ } ->
                      Wire.error_code_to_string code
                  | Error e -> "transport: " ^ e)
          done;
          (* inline observability is exempt from chaos and keeps working
             mid-storm *)
          let m = expect_ok (Client.call c Wire.Metrics) in
          check "metrics op unfaulted" true
            (dig_str [ "schema" ] m = Some "gossip-metrics/1");
          (* the supervisor refills the pool; health returns to ok *)
          let h = wait_healthy c ~timeout_s:5.0 in
          check "health reports the restarts" true
            (match dig_int [ "worker_restarts" ] h with
            | Some n -> n >= 1
            | None -> false);
          check "no worker left missing" true
            (dig_int [ "workers_missing" ] h = Some 0);
          let m' = expect_ok (Client.call c Wire.Metrics) in
          check "restart gauge advanced" true
            (match dig_int [ "gauges"; "worker_restarts" ] m' with
            | Some n -> n >= 1
            | None -> false);
          check "panics counted as ping errors" true
            (match dig_int [ "totals"; "ops"; "ping"; "errors" ] m' with
            | Some n -> n >= 4
            | None -> false)))

let test_e2e_resilient_client_survives_drops () =
  with_server
    ~chaos:(Chaos.make ~seed:5 ~drop:0.4 ())
    (fun _server listen ->
      let policy =
        {
          Resilient.max_attempts = 10;
          base_backoff_ms = 2;
          max_backoff_ms = 20;
          attempt_timeout_ms = 250;
          call_budget_ms = 10_000;
          connect_timeout_ms = 1_000;
        }
      in
      let rc = Resilient.connect ~policy ~seed:3 listen in
      Fun.protect
        ~finally:(fun () -> Resilient.close rc)
        (fun () ->
          for i = 1 to 12 do
            match Resilient.call rc Wire.Ping with
            | Ok { Wire.outcome = Ok _; _ } -> ()
            | Ok _ -> Alcotest.failf "ping %d answered with an error" i
            | Error (Resilient.Fatal (code, msg)) ->
                Alcotest.failf "ping %d fatal %s: %s" i
                  (Wire.error_code_to_string code)
                  msg
            | Error (Resilient.Exhausted msg) ->
                Alcotest.failf "ping %d exhausted: %s" i msg
          done;
          let s = Resilient.stats rc in
          check_int "every call accounted" s.Resilient.calls
            (s.Resilient.ok + s.Resilient.fatal + s.Resilient.gave_up);
          check_int "all calls succeeded" 12 s.Resilient.ok;
          check "drops forced retries" true (s.Resilient.retries > 0);
          check "retries beyond firsts add up" true
            (s.Resilient.attempts = s.Resilient.calls + s.Resilient.retries)))

let test_e2e_resilient_client_gives_up_explicitly () =
  (* every reply dropped: the call must end in Exhausted — an explicit
     verdict, never a hang or a silent loss *)
  with_server
    ~chaos:(Chaos.make ~seed:2 ~drop:1.0 ())
    (fun _server listen ->
      let policy =
        {
          Resilient.max_attempts = 3;
          base_backoff_ms = 1;
          max_backoff_ms = 4;
          attempt_timeout_ms = 80;
          call_budget_ms = 2_000;
          connect_timeout_ms = 1_000;
        }
      in
      let rc = Resilient.connect ~policy listen in
      Fun.protect
        ~finally:(fun () -> Resilient.close rc)
        (fun () ->
          (match Resilient.call rc Wire.Ping with
          | Error (Resilient.Exhausted msg) ->
              check "last error is named" true (String.length msg > 0)
          | Ok _ -> Alcotest.fail "call must not succeed under drop=1"
          | Error (Resilient.Fatal _) ->
              Alcotest.fail "a dropped reply is not a rejection");
          let s = Resilient.stats rc in
          check_int "gave up once" 1 s.Resilient.gave_up;
          check_int "used every attempt" 3 s.Resilient.attempts);
      (* the raw client still sees inline ops answered: chaos never
         faults the observability plane *)
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let h = expect_ok (Client.call c Wire.Health) in
          check "health exempt from chaos" true
            (dig_str [ "schema" ] h = Some "gossip-health/1")))

let test_e2e_resilient_client_tolerates_corruption () =
  with_server
    ~chaos:(Chaos.make ~seed:4 ~corrupt:1.0 ())
    (fun _server listen ->
      let policy =
        {
          Resilient.max_attempts = 3;
          base_backoff_ms = 1;
          max_backoff_ms = 4;
          attempt_timeout_ms = 200;
          call_budget_ms = 2_000;
          connect_timeout_ms = 1_000;
        }
      in
      let rc = Resilient.connect ~policy listen in
      Fun.protect
        ~finally:(fun () -> Resilient.close rc)
        (fun () ->
          (match Resilient.call rc Wire.Ping with
          | Error (Resilient.Exhausted _) -> ()
          | Ok _ -> Alcotest.fail "corrupt frames must not parse as success"
          | Error (Resilient.Fatal _) ->
              Alcotest.fail "corruption is retryable, not fatal");
          let s = Resilient.stats rc in
          check "garbled frames recognised" true (s.Resilient.garbled >= 3)))

let test_e2e_resilient_client_drops_stale_replies () =
  (* every reply delayed well past the attempt timeout: late answers to
     abandoned attempts must be discarded by id correlation, never
     returned as the answer to a newer attempt *)
  with_server
    ~chaos:(Chaos.make ~seed:6 ~delay:1.0 ~delay_ms:250 ())
    (fun _server listen ->
      let policy =
        {
          Resilient.max_attempts = 4;
          base_backoff_ms = 1;
          max_backoff_ms = 4;
          attempt_timeout_ms = 100;
          call_budget_ms = 3_000;
          connect_timeout_ms = 1_000;
        }
      in
      let rc = Resilient.connect ~policy listen in
      Fun.protect
        ~finally:(fun () -> Resilient.close rc)
        (fun () ->
          (match Resilient.call rc Wire.Ping with
          | Error (Resilient.Exhausted _) -> ()
          | Ok _ -> Alcotest.fail "no reply should beat the attempt timeout"
          | Error (Resilient.Fatal _) -> Alcotest.fail "lateness is not fatal");
          let s = Resilient.stats rc in
          check "stale replies were correlated away" true
            (s.Resilient.stale_dropped >= 1)))

let test_e2e_resilient_client_fatal_not_retried () =
  with_server (fun _server listen ->
      let rc = Resilient.connect listen in
      Fun.protect
        ~finally:(fun () -> Resilient.close rc)
        (fun () ->
          (match
             Resilient.call rc
               (Wire.Bound
                  {
                    net = { Wire.family = "nosuch"; dim = 4; degree = 2 };
                    s = Some 4;
                    full_duplex = false;
                  })
           with
          | Error (Resilient.Fatal (Wire.Bad_request, _)) -> ()
          | Ok _ -> Alcotest.fail "unknown family must not succeed"
          | Error (Resilient.Exhausted _) ->
              Alcotest.fail "a rejection must not be retried"
          | Error (Resilient.Fatal (code, _)) ->
              Alcotest.failf "wrong fatal code %s"
                (Wire.error_code_to_string code));
          let s = Resilient.stats rc in
          check_int "rejected on the first attempt" 1 s.Resilient.attempts;
          check_int "no retries of a rejection" 0 s.Resilient.retries))

let suite =
  [
    ("bounded queue basics", `Quick, test_queue_basic);
    ("bounded queue close drains", `Quick, test_queue_close_drains_backlog);
    ("bounded queue concurrent", `Quick, test_queue_concurrent);
    ("wire request roundtrip", `Quick, test_wire_request_roundtrip);
    ("wire golden requests", `Quick, test_wire_golden_requests);
    ("wire trace context forward-compat", `Quick, test_wire_trace_context);
    ("wire rejections", `Quick, test_wire_rejections);
    ("wire response roundtrip", `Quick, test_wire_response_roundtrip);
    ("wire framing", `Quick, test_wire_framing);
    ("dispatch direct", `Quick, test_dispatch_direct);
    ("dispatch simulate_implicit", `Quick, test_dispatch_simulate_implicit);
    ("dispatch certify_faults", `Quick, test_dispatch_certify_faults);
    ("metrics json shape", `Quick, test_metrics_json_shape);
    ("metrics trace exemplar", `Quick, test_metrics_exemplar);
    ("health json transitions", `Quick, test_health_json_transitions);
    ("metrics resource + heap health", `Quick, test_metrics_resource_and_heap_health);
    ("trace analysis", `Quick, test_trace_analysis);
    ("trace alloc aggregation", `Quick, test_trace_alloc_aggregation);
    ("trace stitch across nodes", `Quick, test_trace_stitch);
    ("e2e basic ops", `Quick, test_e2e_basic_ops);
    ("e2e simulate matches direct", `Quick, test_e2e_simulate_matches_direct);
    ("e2e malformed frame survives", `Quick, test_e2e_malformed_frame_connection_survives);
    ("e2e oversized frame closes", `Quick, test_e2e_oversized_frame_closes_connection);
    ("e2e deadline exceeded", `Quick, test_e2e_deadline_exceeded);
    ("e2e queue full", `Quick, test_e2e_queue_full);
    ("e2e concurrent clients", `Quick, test_e2e_concurrent_clients);
    ("e2e metrics/health/spans ops", `Quick, test_e2e_metrics_ops);
    ("e2e health degrades when saturated", `Quick, test_e2e_health_degrades_under_saturation);
    ("e2e access log shape", `Quick, test_e2e_access_log_shape);
    ("e2e shutdown op", `Quick, test_e2e_shutdown_op);
    ("chaos plan decisions", `Quick, test_chaos_plan_and_decisions);
    ("supervisor respawns crashes", `Quick, test_supervisor_respawns_crashed_workers);
    ("bounded queue domain shutdown race", `Quick, test_queue_domain_shutdown_race);
    ("e2e write error counted, worker survives", `Quick, test_e2e_write_error_counted_worker_survives);
    ("e2e chaos panic respawn + recovery", `Quick, test_e2e_chaos_panic_respawn_and_recovery);
    ("e2e resilient client survives drops", `Quick, test_e2e_resilient_client_survives_drops);
    ("e2e resilient client gives up explicitly", `Quick, test_e2e_resilient_client_gives_up_explicitly);
    ("e2e resilient client tolerates corruption", `Quick, test_e2e_resilient_client_tolerates_corruption);
    ("e2e resilient client drops stale replies", `Quick, test_e2e_resilient_client_drops_stale_replies);
    ("e2e resilient client does not retry rejections", `Quick, test_e2e_resilient_client_fatal_not_retried);
  ]
