(* The serving subsystem: bounded queue semantics, wire-protocol golden
   round trips and rejections, and end-to-end runs against an in-process
   server on a Unix socket — concurrent clients, malformed and oversized
   frames, the queue-full backpressure reply, deadline-exceeded replies,
   and graceful shutdown. *)

module Json = Gossip_util.Json
module Queue_ = Gossip_serve.Bounded_queue
module Wire = Gossip_serve.Wire
module Dispatch = Gossip_serve.Dispatch
module Server = Gossip_serve.Server
module Client = Gossip_serve.Client

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- bounded queue --- *)

let test_queue_basic () =
  let q = Queue_.create ~capacity:2 in
  check_int "capacity" 2 (Queue_.capacity q);
  check "push 1" true (Queue_.try_push q 1 = `Ok);
  check "push 2" true (Queue_.try_push q 2 = `Ok);
  check "push 3 full" true (Queue_.try_push q 3 = `Full);
  check_int "length" 2 (Queue_.length q);
  check "pop fifo" true (Queue_.pop q = Some 1);
  check "freed a slot" true (Queue_.try_push q 4 = `Ok);
  check "pop 2" true (Queue_.pop q = Some 2);
  check "pop 4" true (Queue_.pop q = Some 4);
  Queue_.close q;
  check "push after close" true (Queue_.try_push q 5 = `Closed);
  check "pop after close drained" true (Queue_.pop q = None);
  check "closed" true (Queue_.is_closed q);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Bounded_queue.create: capacity < 1") (fun () ->
      ignore (Queue_.create ~capacity:0))

let test_queue_close_drains_backlog () =
  let q = Queue_.create ~capacity:4 in
  ignore (Queue_.try_push q "a");
  ignore (Queue_.try_push q "b");
  Queue_.close q;
  (* close means "no new work", not "drop work" *)
  check "backlog a" true (Queue_.pop q = Some "a");
  check "backlog b" true (Queue_.pop q = Some "b");
  check "then None" true (Queue_.pop q = None)

let test_queue_concurrent () =
  let q = Queue_.create ~capacity:1024 in
  let producers = 4 and per = 250 in
  let popped = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        let rec go () =
          match Queue_.pop q with
          | Some x ->
              popped := x :: !popped;
              go ()
          | None -> ()
        in
        go ())
      ()
  in
  let ts =
    List.init producers (fun p ->
        Thread.create
          (fun () ->
            for i = 0 to per - 1 do
              while Queue_.try_push q ((p * per) + i) <> `Ok do
                Thread.yield ()
              done
            done)
          ())
  in
  List.iter Thread.join ts;
  Queue_.close q;
  Thread.join consumer;
  check_int "all delivered" (producers * per) (List.length !popped);
  check "no duplicates" true
    (List.length (List.sort_uniq compare !popped) = producers * per)

(* --- wire: golden round trips --- *)

let net = { Wire.family = "hypercube"; dim = 4; degree = 2 }

let all_ops =
  [
    Wire.Ping;
    Wire.Version;
    Wire.Shutdown;
    Wire.Stats;
    Wire.Sleep { ms = 250 };
    Wire.Tables { s_max = 8; ss = [ 3; 4; 5 ] };
    Wire.Bound { net; s = Some 4; full_duplex = false };
    Wire.Bound { net; s = None; full_duplex = true };
    Wire.Simulate { net; full_duplex = true };
    Wire.Certify { spec = Wire.Built { net; full_duplex = false }; refine = true };
    Wire.Certify { spec = Wire.Inline "mode half_duplex\nn 2\nperiod 1\nround 0: 0>1"; refine = false };
  ]

let test_wire_request_roundtrip () =
  List.iteri
    (fun i op ->
      let req = { Wire.id = Json.Int i; op; timeout_ms = Some (100 + i) } in
      match Wire.parse_request (Wire.request_to_json req) with
      | Ok req' ->
          check (Printf.sprintf "roundtrip %s" (Wire.op_name op)) true
            (req = req')
      | Error e -> Alcotest.failf "roundtrip %s: %s" (Wire.op_name op) e)
    all_ops;
  (* no id, no timeout *)
  let req = { Wire.id = Json.Null; op = Wire.Ping; timeout_ms = None } in
  check "bare ping" true (Wire.parse_request (Wire.request_to_json req) = Ok req)

let test_wire_golden_requests () =
  (* frames as a foreign client would write them *)
  let cases =
    [
      ( {|{"op":"ping"}|},
        { Wire.id = Json.Null; op = Wire.Ping; timeout_ms = None } );
      ( {|{"id":7,"op":"tables","params":{"s_max":6,"ss":[3,4]},"timeout_ms":500}|},
        {
          Wire.id = Json.Int 7;
          op = Wire.Tables { s_max = 6; ss = [ 3; 4 ] };
          timeout_ms = Some 500;
        } );
      ( {|{"id":"abc","op":"bound","params":{"family":"cycle","dim":16}}|},
        {
          Wire.id = Json.Str "abc";
          op =
            Wire.Bound
              {
                net = { Wire.family = "cycle"; dim = 16; degree = 2 };
                s = None;
                full_duplex = false;
              };
          timeout_ms = None;
        } );
      ( {|{"op":"simulate","params":{"family":"db","dim":3,"degree":2,"full_duplex":false}}|},
        {
          Wire.id = Json.Null;
          op =
            Wire.Simulate
              {
                net = { Wire.family = "db"; dim = 3; degree = 2 };
                full_duplex = false;
              };
          timeout_ms = None;
        } );
    ]
  in
  List.iter
    (fun (src, expected) ->
      match Json.of_string src with
      | Error e -> Alcotest.failf "golden frame did not parse: %s" e
      | Ok j -> (
          match Wire.parse_request j with
          | Ok req -> check src true (req = expected)
          | Error e -> Alcotest.failf "golden frame rejected: %s" e))
    cases

let test_wire_rejections () =
  let reject src frag =
    let j = Result.get_ok (Json.of_string src) in
    match Wire.parse_request j with
    | Ok _ -> Alcotest.failf "accepted %s" src
    | Error msg ->
        check (Printf.sprintf "reject %s" src) true
          (let found = ref false in
           let fl = String.length frag and ml = String.length msg in
           for i = 0 to ml - fl do
             if String.sub msg i fl = frag then found := true
           done;
           !found)
  in
  reject {|[1,2,3]|} "object";
  reject {|{"params":{}}|} "op";
  reject {|{"op":"frobnicate"}|} "unknown operation";
  reject {|{"op":"bound","params":{"dim":4}}|} "family";
  reject {|{"op":"bound","params":{"family":"moebius","dim":4}}|} "unknown family";
  reject {|{"op":"bound","params":{"family":"cycle","dim":0}}|} "out of range";
  reject {|{"op":"bound","params":{"family":"cycle","dim":"big"}}|} "integer";
  reject {|{"op":"tables","params":{"ss":[2]}}|} "ss";
  reject {|{"op":"tables","params":{"ss":[]}}|} "non-empty";
  reject {|{"op":"ping","timeout_ms":-5}|} "timeout_ms";
  reject {|{"op":"sleep"}|} "ms";
  reject {|{"op":"certify","params":{"protocol":"x","family":"cycle","dim":4}}|}
    "exclusive"

let test_wire_response_roundtrip () =
  let ok = Wire.ok_response ~id:(Json.Int 3) (Json.Obj [ ("pong", Json.Bool true) ]) in
  (match Wire.parse_response ok with
  | Ok r ->
      check "ok id" true (r.Wire.resp_id = Json.Int 3);
      check_str "ok version" Core.Version.string r.Wire.resp_version;
      check "ok outcome" true
        (r.Wire.outcome = Ok (Json.Obj [ ("pong", Json.Bool true) ]))
  | Error e -> Alcotest.fail e);
  let err =
    Wire.error_response ~id:Json.Null ~code:Wire.Queue_full ~message:"full"
  in
  (match Wire.parse_response err with
  | Ok r ->
      check "err outcome" true (r.Wire.outcome = Error (Wire.Queue_full, "full"))
  | Error e -> Alcotest.fail e);
  (* every error code survives the string round trip *)
  List.iter
    (fun c ->
      check "code roundtrip" true
        (Wire.error_code_of_string (Wire.error_code_to_string c) = Some c))
    [
      Wire.Bad_request; Wire.Queue_full; Wire.Deadline_exceeded;
      Wire.Oversized_frame; Wire.Shutting_down; Wire.Internal;
    ]

let test_wire_framing () =
  let frames_of s ~max_bytes =
    let path = Filename.temp_file "wiretest" ".txt" in
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc;
    let ic = open_in_bin path in
    let rec go acc =
      match Wire.read_frame ic ~max_bytes with
      | Ok f -> go (Ok f :: acc)
      | Error e -> List.rev (Error e :: acc)
    in
    let r = go [] in
    close_in ic;
    Sys.remove path;
    r
  in
  check "plain lines" true
    (frames_of "a\nbb\n" ~max_bytes:10 = [ Ok "a"; Ok "bb"; Error Wire.Eof ]);
  check "crlf stripped" true
    (frames_of "a\r\n" ~max_bytes:10 = [ Ok "a"; Error Wire.Eof ]);
  check "unterminated final frame" true
    (frames_of "tail" ~max_bytes:10 = [ Ok "tail"; Error Wire.Eof ]);
  check "oversized detected" true
    (match frames_of "0123456789ABCDEF\n" ~max_bytes:8 with
    | Error Wire.Oversized :: _ -> true
    | _ -> false);
  check "empty line is empty frame" true
    (frames_of "\nx\n" ~max_bytes:10 = [ Ok ""; Ok "x"; Error Wire.Eof ])

(* --- dispatch --- *)

let test_dispatch_direct () =
  let d = Dispatch.create () in
  (match Dispatch.eval d Wire.Ping with
  | Ok j -> check "pong" true (Json.member "pong" j = Some (Json.Bool true))
  | Error _ -> Alcotest.fail "ping failed");
  (match Dispatch.eval d (Wire.Tables { s_max = 8; ss = [ 3; 4; 5; 6; 7; 8 ] }) with
  | Ok j ->
      check "tables matches direct library call" true
        (j = Gossip_bounds.Tables.to_json ~s_max:8 ~ss:[ 3; 4; 5; 6; 7; 8 ] ())
  | Error _ -> Alcotest.fail "tables failed");
  (* the oversize gate fires before any construction *)
  (match
     Dispatch.eval d
       (Wire.Bound
          {
            net = { Wire.family = "hypercube"; dim = 60; degree = 2 };
            s = None;
            full_duplex = false;
          })
   with
  | Error (Wire.Bad_request, msg) ->
      check "too-large message" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "oversized network must be rejected");
  (* unparsable inline protocol is a bad request, not an internal error *)
  match
    Dispatch.eval d
      (Wire.Certify { spec = Wire.Inline "not a protocol"; refine = false })
  with
  | Error (Wire.Bad_request, _) -> ()
  | _ -> Alcotest.fail "garbage protocol must be a bad_request"

(* --- end-to-end --- *)

let fresh_socket_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gserve-%d-%d.sock" (Unix.getpid ()) !counter)

let with_server ?dispatch ?(workers = 2) ?(queue_capacity = 16)
    ?(max_frame_bytes = Wire.default_max_frame_bytes) f =
  let path = fresh_socket_path () in
  let listen = Server.Unix_socket path in
  let config =
    {
      (Server.default_config ~listen) with
      Server.workers;
      queue_capacity;
      max_frame_bytes;
    }
  in
  let server = Server.create ?dispatch config in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.shutdown server)
    (fun () -> f server listen)

let expect_ok = function
  | Ok { Wire.outcome = Ok result; _ } -> result
  | Ok { Wire.outcome = Error (code, msg); _ } ->
      Alcotest.failf "server error %s: %s" (Wire.error_code_to_string code) msg
  | Error e -> Alcotest.failf "transport error: %s" e

let test_e2e_basic_ops () =
  with_server (fun server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let pong = expect_ok (Client.call c ~id:(Json.Int 1) Wire.Ping) in
          check "pong" true (Json.member "pong" pong = Some (Json.Bool true));
          let v = expect_ok (Client.call c Wire.Version) in
          check "version op" true
            (Json.member "version" v = Some (Json.Str Core.Version.string));
          (* tables over the wire = the direct library call *)
          let t =
            expect_ok
              (Client.call c (Wire.Tables { s_max = 8; ss = [ 3; 4; 5; 6; 7; 8 ] }))
          in
          check "tables = direct" true
            (t = Gossip_bounds.Tables.to_json ~s_max:8 ~ss:[ 3; 4; 5; 6; 7; 8 ] ());
          (* bound over the wire = the direct oracle *)
          let g = Gossip_topology.Families.hypercube 4 in
          let direct =
            Gossip_bounds.Oracle.lower_bounds g
              ~mode:Gossip_protocol.Protocol.Half_duplex ~s:(Some 4)
          in
          let b =
            expect_ok
              (Client.call c
                 (Wire.Bound
                    {
                      net = { Wire.family = "hypercube"; dim = 4; degree = 2 };
                      s = Some 4;
                      full_duplex = false;
                    }))
          in
          check "bound sound = direct" true
            (Json.member "sound" b = Some (Json.Int direct.Gossip_bounds.Oracle.sound));
          check "bound diameter = direct" true
            (Json.member "diameter" b
            = Some (Json.Int direct.Gossip_bounds.Oracle.diameter));
          (* the repeat is a cache hit *)
          let hits () =
            (Core.Context.stats (Dispatch.context (Server.dispatch server)))
              .Core.Context.hits
          in
          let stats0 = hits () in
          let _again =
            expect_ok
              (Client.call c
                 (Wire.Bound
                    {
                      net = { Wire.family = "hypercube"; dim = 4; degree = 2 };
                      s = Some 4;
                      full_duplex = false;
                    }))
          in
          check "repeat query hits the cache" true (hits () > stats0)))

let test_e2e_simulate_matches_direct () =
  with_server (fun _server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let result =
            expect_ok
              (Client.call c
                 (Wire.Simulate
                    {
                      net = { Wire.family = "hypercube"; dim = 3; degree = 2 };
                      full_duplex = false;
                    }))
          in
          let g = Gossip_topology.Families.hypercube 3 in
          let sys = Gossip_protocol.Builders.edge_coloring_half_duplex g in
          let direct = Core.Analysis.certify_protocol sys in
          let run = Gossip_simulate.Engine.gossip_run sys in
          check "simulate = direct library call" true
            (result
            = Core.Analysis.protocol_report_to_json
                ~coverage:run.Gossip_simulate.Engine.curve direct)))

let test_e2e_malformed_frame_connection_survives () =
  with_server (fun _server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.send_line c "this is not json";
          (match Client.recv c with
          | Ok { Wire.outcome = Error (Wire.Bad_request, _); _ } -> ()
          | _ -> Alcotest.fail "expected bad_request");
          (* unknown op: id still echoed *)
          Client.send_line c {|{"id":42,"op":"frobnicate"}|};
          (match Client.recv c with
          | Ok { Wire.resp_id = Json.Int 42; outcome = Error (Wire.Bad_request, _); _ } ->
              ()
          | _ -> Alcotest.fail "expected bad_request with echoed id");
          (* the connection survived both *)
          let pong = expect_ok (Client.call c Wire.Ping) in
          check "still alive" true
            (Json.member "pong" pong = Some (Json.Bool true))))

let test_e2e_oversized_frame_closes_connection () =
  with_server ~max_frame_bytes:128 (fun _server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.send_line c (String.make 300 'x');
          (match Client.recv c with
          | Ok { Wire.outcome = Error (Wire.Oversized_frame, _); _ } -> ()
          | other ->
              Alcotest.failf "expected oversized_frame, got %s"
                (match other with
                | Ok _ -> "another reply"
                | Error e -> "transport: " ^ e));
          (* the stream is unframed from here: server closes *)
          match Client.recv c with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "connection should be closed"))

let test_e2e_deadline_exceeded () =
  with_server ~workers:1 (fun _server listen ->
      let a = Client.connect_retry listen in
      let b = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () ->
          Client.close a;
          Client.close b)
        (fun () ->
          (* occupy the only worker … *)
          Client.send_line a {|{"id":"slow","op":"sleep","params":{"ms":400}}|};
          Thread.delay 0.1;
          (* … so this deadline has long expired when a worker frees up *)
          match Client.call b ~id:(Json.Int 9) ~timeout_ms:1 Wire.Ping with
          | Ok { Wire.resp_id = Json.Int 9; outcome = Error (Wire.Deadline_exceeded, _); _ } ->
              (* the slow request itself still completed *)
              (match Client.recv a with
              | Ok { Wire.resp_id = Json.Str "slow"; outcome = Ok _; _ } -> ()
              | _ -> Alcotest.fail "sleep reply lost")
          | other ->
              Alcotest.failf "expected deadline_exceeded, got %s"
                (match other with
                | Ok { Wire.outcome = Ok _; _ } -> "success"
                | Ok { Wire.outcome = Error (c, _); _ } ->
                    Wire.error_code_to_string c
                | Error e -> "transport: " ^ e)))

let test_e2e_queue_full () =
  with_server ~workers:1 ~queue_capacity:1 (fun _server listen ->
      let c = Client.connect_retry listen in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* worker takes the first sleep; the second fills the queue *)
          Client.send_line c {|{"id":1,"op":"sleep","params":{"ms":400}}|};
          Thread.delay 0.1;
          Client.send_line c {|{"id":2,"op":"sleep","params":{"ms":10}}|};
          Thread.delay 0.05;
          Client.send_line c {|{"id":3,"op":"ping"}|};
          (* the rejection is written by the reader thread immediately,
             out of order w.r.t. the queued work *)
          match Client.recv c with
          | Ok { Wire.resp_id = Json.Int 3; outcome = Error (Wire.Queue_full, _); _ } ->
              (match Client.recv c with
              | Ok { Wire.resp_id = Json.Int 1; outcome = Ok _; _ } -> (
                  match Client.recv c with
                  | Ok { Wire.resp_id = Json.Int 2; outcome = Ok _; _ } -> ()
                  | _ -> Alcotest.fail "queued sleep reply lost")
              | _ -> Alcotest.fail "running sleep reply lost")
          | other ->
              Alcotest.failf "expected queue_full for id 3, got %s"
                (match other with
                | Ok { Wire.outcome = Ok _; _ } -> "a success"
                | Ok { Wire.outcome = Error (code, _); _ } ->
                    Wire.error_code_to_string code
                | Error e -> "transport: " ^ e)))

let test_e2e_concurrent_clients () =
  with_server ~workers:3 ~queue_capacity:64 (fun _server listen ->
      let clients = 4 and per_client = 20 in
      let failures = ref 0 in
      let mu = Mutex.create () in
      let ops i =
        match i mod 3 with
        | 0 -> Wire.Ping
        | 1 -> Wire.Tables { s_max = 8; ss = [ 3; 4; 5; 6; 7; 8 ] }
        | _ ->
            Wire.Bound
              {
                net = { Wire.family = "cycle"; dim = 16; degree = 2 };
                s = Some 4;
                full_duplex = false;
              }
      in
      let expected_tables =
        Gossip_bounds.Tables.to_json ~s_max:8 ~ss:[ 3; 4; 5; 6; 7; 8 ] ()
      in
      let worker cidx () =
        let c = Client.connect_retry listen in
        for i = 0 to per_client - 1 do
          let id = Json.Int ((cidx * 1000) + i) in
          match Client.call c ~id (ops i) with
          | Ok { Wire.resp_id; outcome = Ok result; _ } ->
              let good =
                resp_id = id
                && (i mod 3 <> 1 || result = expected_tables)
              in
              if not good then begin
                Mutex.lock mu;
                incr failures;
                Mutex.unlock mu
              end
          | _ ->
              Mutex.lock mu;
              incr failures;
              Mutex.unlock mu
        done;
        Client.close c
      in
      let ts = List.init clients (fun c -> Thread.create (worker c) ()) in
      List.iter Thread.join ts;
      check_int "no dropped or garbled replies" 0 !failures)

let test_e2e_shutdown_op () =
  with_server (fun server listen ->
      let c = Client.connect_retry listen in
      (match Client.call c ~id:(Json.Int 1) Wire.Shutdown with
      | Ok { Wire.outcome = Ok j; _ } ->
          check "ack" true (Json.member "stopping" j = Some (Json.Bool true))
      | _ -> Alcotest.fail "shutdown not acknowledged");
      Client.close c;
      check "stop requested" true (Server.stop_requested server);
      (* drain (idempotent with the with_server finally) *)
      Server.shutdown server;
      (* the socket is gone: new connections fail *)
      match Client.connect listen with
      | exception Unix.Unix_error _ -> ()
      | c2 ->
          Client.close c2;
          Alcotest.fail "connect after shutdown should fail")

let suite =
  [
    ("bounded queue basics", `Quick, test_queue_basic);
    ("bounded queue close drains", `Quick, test_queue_close_drains_backlog);
    ("bounded queue concurrent", `Quick, test_queue_concurrent);
    ("wire request roundtrip", `Quick, test_wire_request_roundtrip);
    ("wire golden requests", `Quick, test_wire_golden_requests);
    ("wire rejections", `Quick, test_wire_rejections);
    ("wire response roundtrip", `Quick, test_wire_response_roundtrip);
    ("wire framing", `Quick, test_wire_framing);
    ("dispatch direct", `Quick, test_dispatch_direct);
    ("e2e basic ops", `Quick, test_e2e_basic_ops);
    ("e2e simulate matches direct", `Quick, test_e2e_simulate_matches_direct);
    ("e2e malformed frame survives", `Quick, test_e2e_malformed_frame_connection_survives);
    ("e2e oversized frame closes", `Quick, test_e2e_oversized_frame_closes_connection);
    ("e2e deadline exceeded", `Quick, test_e2e_deadline_exceeded);
    ("e2e queue full", `Quick, test_e2e_queue_full);
    ("e2e concurrent clients", `Quick, test_e2e_concurrent_clients);
    ("e2e shutdown op", `Quick, test_e2e_shutdown_op);
  ]
