(* Tests for the simulation engine: whispering-model semantics, gossip
   and broadcast completion, and the structural invariants every run must
   satisfy (monotone knowledge, gossip >= broadcast >= diameter-ish). *)

open Gossip_topology
open Gossip_protocol
open Gossip_simulate
module Bitset = Gossip_util.Bitset
module Json = Gossip_util.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let get = function Some x -> x | None -> Alcotest.fail "expected completion"

let test_initial_state () =
  let st = Engine.initial_state 4 in
  check_int "items known initially" 4 (Engine.items_known st);
  check "each knows own item" true
    (List.for_all
       (fun v -> Bitset.mem (Engine.knowledge st v) v)
       [ 0; 1; 2; 3 ]);
  check "knows nothing else" false (Bitset.mem (Engine.knowledge st 0) 1);
  check "not complete" false (Engine.all_complete st)

let test_apply_round_directed () =
  let st = Engine.initial_state 3 in
  Engine.apply_round st [ (0, 1) ];
  check "1 learned 0" true (Bitset.mem (Engine.knowledge st 1) 0);
  check "0 learned nothing" false (Bitset.mem (Engine.knowledge st 0) 1);
  Engine.apply_round st [ (1, 2) ];
  check "2 learned both" true
    (Bitset.mem (Engine.knowledge st 2) 0 && Bitset.mem (Engine.knowledge st 2) 1)

let test_apply_round_exchange_snapshots () =
  (* full-duplex exchange must swap start-of-round knowledge, not leak
     within-round updates *)
  let st = Engine.initial_state 2 in
  Engine.apply_round st [ (0, 1); (1, 0) ];
  check "both complete after one exchange" true (Engine.all_complete st);
  (* three vertices: chain of two exchanges in successive rounds *)
  let st = Engine.initial_state 3 in
  Engine.apply_round st [ (0, 1); (1, 0) ];
  check "2 still isolated" true
    (Bitset.cardinal (Engine.knowledge st 2) = 1)

let test_snapshot_needed_case () =
  (* round (0->1) and (1->2) is NOT a matching, but apply_round must still
     be correct for matchings where a sender is also a receiver only via
     the opposite arc; verify the snapshot logic using a full-duplex pair
     plus observer *)
  let st = Engine.initial_state 4 in
  Engine.apply_round st [ (0, 1); (1, 0); (2, 3) ];
  check "0 has {0,1}" true
    (Bitset.elements (Engine.knowledge st 0) = [ 0; 1 ]);
  check "1 has {0,1}" true
    (Bitset.elements (Engine.knowledge st 1) = [ 0; 1 ]);
  check "3 has {2,3}" true
    (Bitset.elements (Engine.knowledge st 3) = [ 2; 3 ])

let test_run_protocol () =
  let g = Families.path 3 in
  let p =
    Protocol.make g Protocol.Half_duplex
      [ [ (0, 1) ]; [ (1, 2) ]; [ (2, 1) ]; [ (1, 0) ] ]
  in
  let o = Engine.run_protocol p in
  check "completed" true (o.Engine.completed_at = Some 4);
  check "full coverage" true (o.Engine.coverage = 1.0)

let test_run_protocol_incomplete () =
  let g = Families.path 3 in
  let p = Protocol.make g Protocol.Half_duplex [ [ (0, 1) ] ] in
  let o = Engine.run_protocol p in
  check "incomplete" true (o.Engine.completed_at = None);
  check "partial coverage" true (o.Engine.coverage < 1.0 && o.Engine.coverage > 0.0)

let test_gossip_time_known_protocols () =
  (* full-duplex hypercube allgather completes in exactly dim rounds *)
  check_int "Q4 fd gossip = 4" 4
    (get (Engine.gossip_time (Builders.hypercube_sweep ~dim:4 ~full_duplex:true)));
  check_int "Q4 hd gossip = 8" 8
    (get (Engine.gossip_time (Builders.hypercube_sweep ~dim:4 ~full_duplex:false)));
  (* even cycle rotate completes in ~n rounds *)
  let t = get (Engine.gossip_time (Builders.cycle_rotate 12)) in
  check "cycle rotate close to n" true (t >= 6 && t <= 14)

let test_items_known_incremental () =
  (* the incremental counter must equal a recomputed full rescan after
     every kind of round: directed arcs, exchanges, repeats *)
  let recount st n =
    let acc = ref 0 in
    for v = 0 to n - 1 do
      acc := !acc + Bitset.cardinal (Engine.knowledge st v)
    done;
    !acc
  in
  let sys = Builders.edge_coloring_full_duplex (Families.kautz 2 3) in
  let n = Digraph.n_vertices (Systolic.graph sys) in
  let st = Engine.initial_state n in
  for i = 0 to 29 do
    Engine.apply_round st (Systolic.period_round sys i);
    check_int
      (Printf.sprintf "incremental = rescan after round %d" i)
      (recount st n) (Engine.items_known st)
  done;
  check "complete iff count says so" true
    (Engine.all_complete st = (Engine.items_known st = n * n))

let test_gossip_cap () =
  (* a protocol that never completes: only one edge of the path ever used *)
  let g = Families.path 4 in
  let sys = Systolic.make g Protocol.Half_duplex [ [ (0, 1) ] ] in
  check "cap returns None" true (Engine.gossip_time ~cap:50 sys = None)

let test_broadcast_vs_gossip () =
  List.iter
    (fun sys ->
      let gt = Engine.gossip_time sys in
      let bt = Engine.broadcast_time sys ~src:0 in
      match (gt, bt) with
      | Some g, Some b ->
          check "broadcast <= gossip" true (b <= g);
          let diam =
            Metrics.diameter (Systolic.graph sys)
          in
          check "gossip >= diameter" true (g >= diam)
      | _ -> Alcotest.fail "expected completion")
    [
      Builders.path_wave 8;
      Builders.cycle_rotate 8;
      Builders.hypercube_sweep ~dim:3 ~full_duplex:false;
      Builders.edge_coloring_half_duplex (Families.de_bruijn 2 4);
      Builders.edge_coloring_full_duplex (Families.kautz 2 3);
      Builders.edge_coloring_half_duplex (Families.complete_dary_tree 2 3);
    ]

let test_per_round_coverage_monotone () =
  let sys = Builders.edge_coloring_half_duplex (Families.grid 3 3) in
  let cov = Engine.per_round_coverage sys ~rounds:40 in
  let ok = ref true in
  for i = 1 to Array.length cov - 1 do
    if cov.(i) < cov.(i - 1) -. 1e-12 then ok := false
  done;
  check "coverage monotone" true !ok;
  check "starts above 1/n" true (cov.(0) >= 1.0 /. 9.0);
  check "ends complete" true (cov.(39) = 1.0)

(* --- Faults --- *)

let test_faults_p0_matches_baseline () =
  let sys = Builders.cycle_rotate 12 in
  let base = Option.get (Engine.gossip_time sys) in
  let o = Faults.gossip_time_with_faults sys ~drop_probability:0.0 ~seed:3 in
  check "p=0 matches fault-free" true (o.Faults.completed_at = Some base);
  check "no drops at p=0" true (o.Faults.drops = 0)

let test_faults_p1_never_completes () =
  let sys = Builders.cycle_rotate 8 in
  let o = Faults.gossip_time_with_faults ~cap:100 sys ~drop_probability:1.0 ~seed:3 in
  check "p=1 never completes" true (o.Faults.completed_at = None);
  check "everything dropped" true (o.Faults.drops = o.Faults.activations)

let test_faults_deterministic () =
  let sys = Builders.hypercube_sweep ~dim:4 ~full_duplex:false in
  let a = Faults.gossip_time_with_faults sys ~drop_probability:0.3 ~seed:11 in
  let b = Faults.gossip_time_with_faults sys ~drop_probability:0.3 ~seed:11 in
  check "same seed same outcome" true (a = b);
  let c = Faults.gossip_time_with_faults sys ~drop_probability:0.3 ~seed:12 in
  check "different seed may differ in drops" true
    (c.Faults.activations > 0)

let test_faults_slowdown () =
  let sys = Builders.hypercube_sweep ~dim:4 ~full_duplex:false in
  let base = Option.get (Engine.gossip_time sys) in
  let o = Faults.gossip_time_with_faults sys ~drop_probability:0.2 ~seed:5 in
  (match o.Faults.completed_at with
  | Some t -> check "faulty time >= fault-free" true (t >= base)
  | None -> ());
  let curve = Faults.slowdown_curve sys ~probabilities:[ 0.0; 0.2 ] ~seed:5 in
  let point p =
    List.find (fun pt -> pt.Faults.probability = p) curve
  in
  let p0 = point 0.0 and p2 = point 0.2 in
  check "fault-free trials all complete" true
    (p0.Faults.completed = p0.Faults.trials);
  check "completed never exceeds trials" true
    (List.for_all (fun pt -> pt.Faults.completed <= pt.Faults.trials) curve);
  (match (p0.Faults.mean, p2.Faults.mean) with
  | Some t0, Some t2 -> check "curve increases" true (t2 >= t0)
  | _ -> Alcotest.fail "curve incomplete");
  check "mean iff completed > 0" true
    (List.for_all
       (fun pt -> (pt.Faults.mean <> None) = (pt.Faults.completed > 0))
       curve)

let test_faults_validation () =
  let sys = Builders.cycle_rotate 8 in
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Faults: drop_probability must be in [0, 1]") (fun () ->
      ignore (Faults.gossip_time_with_faults sys ~drop_probability:1.5 ~seed:0));
  Alcotest.check_raises "negative k"
    (Invalid_argument "Faults: k must be >= 0") (fun () ->
      ignore (Faults.run sys ~model:(Faults.Permanent { k = -1 }) ~seed:0));
  Alcotest.check_raises "bad p_recover"
    (Invalid_argument "Faults: p_recover must be in [0, 1]") (fun () ->
      ignore
        (Faults.run sys
           ~model:(Faults.Bursty { p_fail = 0.1; p_recover = 2.0 })
           ~seed:0))

(* --- fault models beyond i.i.d. --- *)

let test_faults_iid_model_matches_legacy () =
  (* [run ~model:Iid] must reproduce [gossip_time_with_faults] draw for
     draw: same seed, same outcome, byte for byte *)
  let sys = Builders.hypercube_sweep ~dim:4 ~full_duplex:false in
  List.iter
    (fun p ->
      let legacy =
        Faults.gossip_time_with_faults sys ~drop_probability:p ~seed:11
      in
      let modern = Faults.run sys ~model:(Faults.Iid { p }) ~seed:11 in
      check "iid model = legacy path" true (legacy = modern))
    [ 0.0; 0.1; 0.3; 0.6 ]

let test_faults_permanent_k0_matches_baseline () =
  let sys = Builders.cycle_rotate 12 in
  let base = Option.get (Engine.gossip_time sys) in
  let o = Faults.run sys ~model:(Faults.Permanent { k = 0 }) ~seed:3 in
  check "k=0 is fault-free" true (o.Faults.completed_at = Some base);
  check "k=0 drops nothing" true (o.Faults.drops = 0);
  check "k=0 fails no arcs" true (o.Faults.failed_arcs = [])

let test_faults_permanent_all_arcs_stalls () =
  (* cycle_rotate 8 has 4 matchings of 4 arcs each, all distinct: m = 16.
     k = m removes every arc of the period — nothing is ever delivered —
     and k > m is a spec error, not an empty run. *)
  let sys = Builders.cycle_rotate 8 in
  let o = Faults.run ~cap:100 sys ~model:(Faults.Permanent { k = 16 }) ~seed:3 in
  check "no arcs, no completion" true (o.Faults.completed_at = None);
  check "every activation dropped" true (o.Faults.drops = o.Faults.activations);
  check_int "all 16 arcs reported failed" 16 (List.length o.Faults.failed_arcs);
  check "failed arcs sorted" true
    (o.Faults.failed_arcs = List.sort compare o.Faults.failed_arcs);
  Alcotest.check_raises "k beyond the arc universe"
    (Invalid_argument
       "Faults: k = 17 exceeds the period's 16 distinct arcs (k <= m)")
    (fun () ->
      ignore (Faults.run ~cap:100 sys ~model:(Faults.Permanent { k = 17 }) ~seed:3))

let test_faults_permanent_monotone_and_deterministic () =
  let sys = Builders.hypercube_sweep ~dim:4 ~full_duplex:false in
  let run k = Faults.run ~cap:4096 sys ~model:(Faults.Permanent { k }) ~seed:7 in
  check "same seed, same broken arcs" true (run 2 = run 2);
  let o0 = run 0 and o2 = run 2 in
  (* a run with permanently broken arcs can only be slower when both
     complete (they share the seed, so the k=2 run is the k=0 run with
     strictly fewer deliveries) *)
  (match (o0.Faults.completed_at, o2.Faults.completed_at) with
  | Some t0, Some t2 -> check "broken arcs never speed it up" true (t2 >= t0)
  | Some _, None -> ()
  | None, _ -> Alcotest.fail "fault-free run must complete");
  check "k=2 drops activations" true (o2.Faults.drops > 0);
  check_int "k=2 reports its chosen arcs" 2 (List.length o2.Faults.failed_arcs);
  check "chosen arcs are period arcs" true
    (let period_arcs =
       List.concat
         (List.init (Systolic.period sys) (Systolic.period_round sys))
     in
     List.for_all (fun a -> List.mem a period_arcs) o2.Faults.failed_arcs)

let test_faults_bursty_p0_matches_baseline () =
  let sys = Builders.cycle_rotate 12 in
  let base = Option.get (Engine.gossip_time sys) in
  let o =
    Faults.run sys
      ~model:(Faults.Bursty { p_fail = 0.0; p_recover = 0.5 })
      ~seed:3
  in
  check "never-failing chain is fault-free" true
    (o.Faults.completed_at = Some base);
  check "no drops" true (o.Faults.drops = 0)

let test_faults_bursty_deterministic_and_bursty () =
  let sys = Builders.hypercube_sweep ~dim:4 ~full_duplex:false in
  let model = Faults.Bursty { p_fail = 0.15; p_recover = 0.3 } in
  let a = Faults.run ~cap:8192 sys ~model ~seed:11 in
  let b = Faults.run ~cap:8192 sys ~model ~seed:11 in
  check "same seed, same bursts" true (a = b);
  check "bursts drop something" true (a.Faults.drops > 0);
  (* at equal marginal loss, correlated losses hurt at least as much as
     scattered ones on this sweep (the burst takes out the same frontier
     arc for consecutive periods) — checked via the curve means *)
  let pts =
    Faults.curve ~cap:8192 ~trials:5 sys
      ~models:
        [
          Faults.Iid { p = 0.3 };
          Faults.Bursty { p_fail = 0.15; p_recover = 0.35 };
        ]
      ~seed:11
  in
  check "curve covers both models" true (List.length pts = 2)

let test_faults_curve_points_json () =
  let sys = Builders.cycle_rotate 8 in
  let models =
    [
      Faults.Iid { p = 0.1 };
      Faults.Permanent { k = 1 };
      Faults.Bursty { p_fail = 0.1; p_recover = 0.5 };
    ]
  in
  let pts = Faults.curve ~trials:3 sys ~models ~seed:5 in
  let names =
    List.map
      (fun pt ->
        match Json.member "model" (Faults.curve_point_to_json pt) with
        | Some (Json.Str s) -> s
        | _ -> "?")
      pts
  in
  check "model names on the wire" true
    (names = [ "iid"; "permanent"; "bursty" ]);
  List.iter2
    (fun pt model ->
      let j = Faults.curve_point_to_json pt in
      check "trials serialized" true (Json.member "trials" j = Some (Json.Int 3));
      match model with
      | Faults.Iid { p } ->
          check "iid carries probability" true
            (Json.member "probability" j = Some (Json.Float p))
      | Faults.Permanent { k } ->
          check "permanent carries k" true (Json.member "k" j = Some (Json.Int k))
      | Faults.Bursty { p_fail; p_recover } ->
          check "bursty carries both rates" true
            (Json.member "p_fail" j = Some (Json.Float p_fail)
            && Json.member "p_recover" j = Some (Json.Float p_recover)))
    pts models

(* Knowledge sets only ever grow, and every known item is explained by a
   dipath in time (we check growth + final size bound). *)
let prop_knowledge_monotone =
  QCheck.Test.make ~name:"knowledge sets grow monotonically" ~count:50
    QCheck.(pair (int_range 0 10_000) (int_range 1 6))
    (fun (seed, period) ->
      let g = Families.de_bruijn 2 3 in
      let sys =
        Builders.random_systolic g Protocol.Half_duplex ~period ~seed
          ~density:0.8
      in
      let n = Digraph.n_vertices g in
      let st = Engine.initial_state n in
      let ok = ref true in
      for i = 0 to (4 * period) - 1 do
        let before = Array.init n (fun v -> Bitset.copy (Engine.knowledge st v)) in
        Engine.apply_round st (Systolic.period_round sys i);
        for v = 0 to n - 1 do
          if not (Bitset.subset before.(v) (Engine.knowledge st v)) then
            ok := false
        done
      done;
      !ok)

(* Gossip time is at least the eccentricity-based bound for every protocol
   that completes: an item from the farthest vertex needs >= diameter
   rounds. *)
let prop_gossip_at_least_diameter =
  QCheck.Test.make ~name:"gossip time >= diameter when complete" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 2 8))
    (fun (seed, period) ->
      let g = Families.kautz 2 3 in
      let sys =
        Builders.random_systolic g Protocol.Half_duplex ~period ~seed
          ~density:1.0
      in
      match Engine.gossip_time ~cap:500 sys with
      | None -> true
      | Some t -> t >= Metrics.diameter g)

(* One extra item per round per processor at most: gossip on n vertices
   takes at least n-1 activations into any fixed vertex... globally,
   items_known grows by at most one per arc activation. *)
let prop_items_bounded_by_activations =
  QCheck.Test.make ~name:"items learned <= total activation budget" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Families.de_bruijn 2 3 in
      let n = Digraph.n_vertices g in
      let sys =
        Builders.random_systolic g Protocol.Half_duplex ~period:4 ~seed
          ~density:1.0
      in
      let st = Engine.initial_state n in
      let budget = ref 0 in
      let ok = ref true in
      for i = 0 to 19 do
        let round = Systolic.period_round sys i in
        (* each arc (x,y) can add at most |know(x)| <= n items *)
        budget := !budget + (List.length round * n);
        Engine.apply_round st round;
        if Engine.items_known st > n + !budget then ok := false
      done;
      !ok)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("initial state", `Quick, test_initial_state);
    ("apply round directed", `Quick, test_apply_round_directed);
    ("exchange snapshots", `Quick, test_apply_round_exchange_snapshots);
    ("snapshot with observer", `Quick, test_snapshot_needed_case);
    ("run protocol", `Quick, test_run_protocol);
    ("run protocol incomplete", `Quick, test_run_protocol_incomplete);
    ("gossip time known protocols", `Quick, test_gossip_time_known_protocols);
    ("items_known incremental", `Quick, test_items_known_incremental);
    ("gossip cap", `Quick, test_gossip_cap);
    ("broadcast vs gossip vs diameter", `Quick, test_broadcast_vs_gossip);
    ("coverage monotone", `Quick, test_per_round_coverage_monotone);
    ("faults p=0 baseline", `Quick, test_faults_p0_matches_baseline);
    ("faults p=1 stalls", `Quick, test_faults_p1_never_completes);
    ("faults deterministic", `Quick, test_faults_deterministic);
    ("faults slowdown", `Quick, test_faults_slowdown);
    ("faults validation", `Quick, test_faults_validation);
    ("faults iid model = legacy", `Quick, test_faults_iid_model_matches_legacy);
    ("faults permanent k=0 baseline", `Quick, test_faults_permanent_k0_matches_baseline);
    ("faults permanent all arcs stalls", `Quick, test_faults_permanent_all_arcs_stalls);
    ("faults permanent monotone", `Quick, test_faults_permanent_monotone_and_deterministic);
    ("faults bursty p_fail=0 baseline", `Quick, test_faults_bursty_p0_matches_baseline);
    ("faults bursty deterministic", `Quick, test_faults_bursty_deterministic_and_bursty);
    ("faults curve json", `Quick, test_faults_curve_points_json);
    q prop_knowledge_monotone;
    q prop_gossip_at_least_diameter;
    q prop_items_bounded_by_activations;
  ]
