(* Telemetry layer: Util.Json emitter/parser, Instrument histograms,
   JSONL trace streams, and the machine-readable table export.

   The JSON tests are adversarial on purpose — control characters,
   quotes, backslashes, non-ASCII bytes, surrogate-pair escapes — since
   every trace line and every --json result flows through this printer
   and must survive the round trip through this parser. *)

module Json = Gossip_util.Json
module Instrument = Gossip_util.Instrument
module Parallel = Gossip_util.Parallel
module Tables = Gossip_bounds.Tables

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let checkf msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

(* --- Json: printing --- *)

let test_json_print () =
  check_str "compact object" {|{"a":1,"b":[true,null,"x"]}|}
    (Json.to_string
       (Json.Obj
          [
            ("a", Json.Int 1);
            ("b", Json.List [ Json.Bool true; Json.Null; Json.Str "x" ]);
          ]));
  check_str "empty containers" {|{"o":{},"l":[]}|}
    (Json.to_string (Json.Obj [ ("o", Json.Obj []); ("l", Json.List []) ]));
  check_str "negative int" "-42" (Json.to_string (Json.Int (-42)));
  (* floats must re-parse to the same value and always look like floats *)
  check_str "float keeps a point" "1.0" (Json.to_string (Json.Float 1.0));
  check_str "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  check_str "inf is null" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_escaping () =
  check_str "quotes and backslashes" {|"a\"b\\c"|}
    (Json.to_string (Json.Str {|a"b\c|}));
  check_str "named escapes" {|"\n\t\r\b\f"|}
    (Json.to_string (Json.Str "\n\t\r\b\012"));
  check_str "other control chars as \\u" "\"\\u0000\\u001f\""
    (Json.to_string (Json.Str "\000\031"));
  (* non-ASCII bytes (UTF-8 payloads) pass through untouched *)
  check_str "utf8 passthrough" "\"\xc3\xa9\"" (Json.to_string (Json.Str "\xc3\xa9"))

(* --- Json: parsing and round trips --- *)

let roundtrip j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "round trip failed: %s" e

let test_json_roundtrip_adversarial () =
  let strings =
    [
      "";
      "plain";
      {|quote " backslash \ slash /|};
      "newline\n tab\t cr\r";
      "\000\001\031\127";
      "\xe2\x88\x80x\xe2\x88\x83y";  (* ∀x∃y *)
      String.make 300 '\\';
      "ends with quote\"";
    ]
  in
  List.iter
    (fun s ->
      match roundtrip (Json.Str s) with
      | Json.Str s' -> check_str "string survives round trip" s s'
      | _ -> Alcotest.fail "string did not parse back to a string")
    strings;
  let deep =
    Json.Obj
      [
        ("xs", Json.List [ Json.Int 1; Json.Float 2.5; Json.Bool false ]);
        ("nested", Json.Obj [ ("k", Json.List [ Json.Obj []; Json.Null ]) ]);
      ]
  in
  check "structure survives round trip" true (roundtrip deep = deep)

let test_json_parse_escapes () =
  (* \uXXXX escapes, including a surrogate pair, decode to UTF-8 *)
  (match Json.of_string "\"A\\u00e9\\u2200\"" with
  | Ok (Json.Str s) -> check_str "unicode escapes" "A\xc3\xa9\xe2\x88\x80" s
  | _ -> Alcotest.fail "unicode escapes did not parse");
  (match Json.of_string "\"\\ud83d\\ude00\"" with
  | Ok (Json.Str s) -> check_str "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair did not parse");
  (match Json.of_string "[1, -2.5e3, true, null]" with
  | Ok (Json.List [ Json.Int 1; Json.Float f; Json.Bool true; Json.Null ]) ->
      checkf "exponent float" (-2500.0) f
  | _ -> Alcotest.fail "mixed list did not parse")

let test_json_parse_rejects () =
  let rejects s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "parser accepted %S" s
    | Error _ -> ()
  in
  List.iter rejects
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "nulx"; "\"unterminated"; "1 2";
      "{\"a\" 1}"; "[1] trailing"; "\"bad \\q escape\"";
    ]

let prop_json_float_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json float round trip"
    QCheck.(float_range (-1e15) 1e15)
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') -> f = f'
      | Ok (Json.Int i) -> float_of_int i = f
      | _ -> false)

let prop_json_string_roundtrip =
  QCheck.Test.make ~count:500 ~name:"json string round trip" QCheck.string
    (fun s ->
      match Json.of_string (Json.to_string (Json.Str s)) with
      | Ok (Json.Str s') -> s = s'
      | _ -> false)

(* --- Histograms --- *)

let test_histogram_known_inputs () =
  Instrument.reset ();
  let bounds = [| 1.0; 2.0; 4.0 |] in
  List.iter
    (Instrument.observe ~bounds "t.hist")
    [ 0.5; 1.5; 1.5; 3.0; 8.0 ];
  match Instrument.histogram "t.hist" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      check "edges fixed at creation" true (h.Instrument.upper_bounds = bounds);
      check "bucket counts" true
        (h.Instrument.bucket_counts = [| 1; 2; 1; 1 |]);
      check_int "count" 5 h.Instrument.count;
      checkf "sum" 14.5 h.Instrument.sum;
      checkf "min" 0.5 h.Instrument.min_value;
      checkf "max" 8.0 h.Instrument.max_value;
      (* p50: rank 2.5 falls in bucket (1, 2] after 1 below; 1.5 of the
         bucket's 2 observations -> 1 + 0.75 * (2 - 1) = 1.75 *)
      checkf "p50 interpolates" 1.75 (Instrument.quantile h 0.5);
      (* p95: rank 4.75 falls in the overflow bucket, whose range is
         (4, max = 8]; 0.75 through it -> 7.0 *)
      checkf "p95 in overflow bucket" 7.0 (Instrument.quantile h 0.95);
      checkf "q=0 clamps to min" 0.5 (Instrument.quantile h 0.0);
      checkf "q=1 clamps to max" 8.0 (Instrument.quantile h 1.0);
      Instrument.reset ()

let test_histogram_json_shape () =
  Instrument.reset ();
  Instrument.observe ~bounds:[| 1.0 |] "t.hist" 0.5;
  Instrument.observe "t.hist" 2.0;
  (* ignored bounds: fixed at creation *)
  (match Instrument.histogram "t.hist" with
  | Some h -> (
      match Instrument.histogram_json h with
      | Json.Obj fields ->
          check "has name" true
            (List.assoc "name" fields = Json.Str "t.hist");
          check "has p50 and p95" true
            (List.mem_assoc "p50" fields && List.mem_assoc "p95" fields);
          (match List.assoc "buckets" fields with
          | Json.List [ _; Json.Obj overflow ] ->
              check "overflow le is the string inf" true
                (List.assoc "le" overflow = Json.Str "inf")
          | _ -> Alcotest.fail "expected two buckets")
      | _ -> Alcotest.fail "histogram_json is not an object")
  | None -> Alcotest.fail "histogram missing");
  Instrument.reset ()

(* --- JSONL trace files --- *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev !lines

(* Every line parses; span_begin/span_end balance per (dom, name). *)
let well_formed_trace lines =
  let opened = Hashtbl.create 16 in
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "trace line %S: %s" line e
      | Ok j -> (
          let field name = Json.member name j in
          check "line is an object with ev" true
            (match field "ev" with Some (Json.Str _) -> true | _ -> false);
          check "line carries mono_ns" true
            (match field "mono_ns" with Some (Json.Int _) -> true | _ -> false);
          let dom =
            match field "dom" with Some (Json.Int d) -> d | _ -> -1
          in
          let name =
            match field "name" with Some (Json.Str s) -> s | _ -> ""
          in
          let key = (dom, name) in
          let count = try Hashtbl.find opened key with Not_found -> 0 in
          match field "ev" with
          | Some (Json.Str "span_begin") -> Hashtbl.replace opened key (count + 1)
          | Some (Json.Str "span_end") ->
              if count = 0 then
                Alcotest.failf "span_end %S without begin" name
              else Hashtbl.replace opened key (count - 1)
          | _ -> ()))
    lines;
  Hashtbl.iter
    (fun (_, name) count ->
      if count <> 0 then Alcotest.failf "span %S left %d open" name count)
    opened

let trace_workload ~domains () =
  (* spans (some nested, one raising), point events, and a parallel map
     whose worker events are stamped from inside each domain *)
  Instrument.span "t.outer" ~attrs:[ ("k", Json.Str "v\"esc") ] (fun () ->
      Instrument.span "t.inner" (fun () -> ignore (Sys.opaque_identity 1)));
  (try Instrument.span "t.raise" (fun () -> raise Exit) with Exit -> ());
  Instrument.event "t.point" ~attrs:[ ("i", Json.Int 3) ];
  ignore (Parallel.init ~domains 64 (fun i -> i * i))

let test_trace_jsonl ~domains () =
  let path = Filename.temp_file "gossip_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Instrument.set_trace_file None;
      Instrument.reset ();
      Sys.remove path)
    (fun () ->
      Instrument.reset ();
      Instrument.set_trace_file (Some path);
      trace_workload ~domains ();
      Instrument.set_trace_file None;
      let lines = read_lines path in
      check "trace is non-empty" true (List.length lines > 0);
      well_formed_trace lines;
      (* the parallel workload streams one event per worker domain *)
      let worker_events =
        List.filter
          (fun l ->
            match Json.of_string l with
            | Ok j -> Json.member "name" j = Some (Json.Str "parallel.worker")
            | Error _ -> false)
          lines
      in
      if domains > 1 then
        check_int "one event per worker" domains (List.length worker_events))

let test_trace_single_domain () = test_trace_jsonl ~domains:1 ()
let test_trace_multi_domain () = test_trace_jsonl ~domains:4 ()

let test_engine_round_events () =
  let path = Filename.temp_file "gossip_engine" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Instrument.set_trace_file None;
      Instrument.reset ();
      Sys.remove path)
    (fun () ->
      Instrument.reset ();
      Instrument.set_trace_file (Some path);
      let sys =
        Gossip_protocol.Builders.edge_coloring_half_duplex
          (Gossip_topology.Families.cycle 8)
      in
      let run = Gossip_simulate.Engine.gossip_run sys in
      Instrument.set_trace_file None;
      let lines = read_lines path in
      well_formed_trace lines;
      let rounds =
        List.filter
          (fun l ->
            match Json.of_string l with
            | Ok j -> Json.member "name" j = Some (Json.Str "engine.round")
            | Error _ -> false)
          lines
      in
      check_int "one event per simulated round"
        (Array.length run.Gossip_simulate.Engine.curve)
        (List.length rounds);
      (match run.Gossip_simulate.Engine.time with
      | Some t ->
          check_int "curve covers the whole run" t
            (Array.length run.Gossip_simulate.Engine.curve)
      | None -> Alcotest.fail "gossip did not complete");
      check "curve ends complete" true
        (run.Gossip_simulate.Engine.curve.(Array.length
                                             run.Gossip_simulate.Engine.curve
                                           - 1)
        = 1.0))

(* --- distributed trace context: ids, sampling, ring, suppression --- *)

module Trace = Gossip_util.Trace

let test_trace_context () =
  let a = Trace.mint () and b = Trace.mint () in
  check "trace ids unique" true (a.Trace.trace_id <> b.Trace.trace_id);
  check_int "trace id is 32 hex chars" 32 (String.length a.Trace.trace_id);
  String.iter
    (fun c ->
      check "trace id lowercase hex" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    a.Trace.trace_id;
  check "root has no parent" true (a.Trace.parent_span_id = None);
  check "default rate keeps everything" true a.Trace.sampled;
  let sid = Trace.fresh_span_id () in
  check_int "span id is 16 hex chars" 16 (String.length sid);
  let c = Trace.child a ~span_id:sid in
  check_str "child keeps the trace id" a.Trace.trace_id c.Trace.trace_id;
  check "child re-parents" true (c.Trace.parent_span_id = Some sid);
  check "child keeps the verdict" true (c.Trace.sampled = a.Trace.sampled);
  (* the head-sampling verdict is pure in the id: same id, same rate,
     same answer — that is what lets every node agree without talking *)
  let id = Trace.fresh_trace_id () in
  check "verdict deterministic" true
    (Trace.sample_decision ~rate:0.37 id = Trace.sample_decision ~rate:0.37 id);
  check "rate 1 keeps all" true (Trace.sample_decision ~rate:1.0 id);
  check "rate 0 drops all" false (Trace.sample_decision ~rate:0.0 id);
  (* at rate r the kept fraction over many fresh ids approaches r *)
  let n = 2000 in
  let kept = ref 0 in
  for _ = 1 to n do
    if Trace.sample_decision ~rate:0.25 (Trace.fresh_trace_id ()) then
      incr kept
  done;
  let frac = float_of_int !kept /. float_of_int n in
  check "sampled fraction near the rate" true (frac > 0.15 && frac < 0.35)

let test_trace_ring () =
  Fun.protect
    ~finally:(fun () ->
      Instrument.set_ring_capacity 0;
      Instrument.reset ())
    (fun () ->
      Instrument.reset ();
      Instrument.set_ring_capacity 4;
      check "ring turns tracing on" true (Instrument.tracing ());
      for i = 1 to 6 do
        Instrument.event "ring.tick" ~attrs:[ ("i", Json.Int i) ]
      done;
      let events, dropped = Instrument.ring_drain () in
      (* capacity 4, six events: the two oldest fell off *)
      check_int "ring keeps the newest" 4 (List.length events);
      check_int "ring counts what it dropped" 2 dropped;
      let is =
        List.filter_map
          (fun e -> Option.bind (Json.member "i" e) Json.to_int_opt)
          events
      in
      check "oldest-first, newest retained" true (is = [ 3; 4; 5; 6 ]);
      let again, dropped' = Instrument.ring_drain () in
      check "drain is destructive" true (again = [] && dropped' = 0);
      (* ~max bounds the reply: the newest [max] events are handed out,
         the older remainder is counted dropped — never silently lost *)
      for i = 1 to 3 do
        Instrument.event "ring.tick" ~attrs:[ ("i", Json.Int i) ]
      done;
      let first, dropped'' = Instrument.ring_drain ~max:2 () in
      let is' =
        List.filter_map
          (fun e -> Option.bind (Json.member "i" e) Json.to_int_opt)
          first
      in
      check "max keeps the newest" true (is' = [ 2; 3 ]);
      check_int "truncation counted as dropped" 1 dropped'';
      check "drain empties even when truncated" true
        (fst (Instrument.ring_drain ()) = []))

let test_sampled_out () =
  Fun.protect
    ~finally:(fun () ->
      Instrument.set_ring_capacity 0;
      Instrument.set_global_attrs [];
      Instrument.reset ())
    (fun () ->
      Instrument.reset ();
      Instrument.set_ring_capacity 16;
      Instrument.set_global_attrs [ ("node", Json.Str "t9") ];
      check "not sampled out by default" false (Instrument.sampled_out ());
      Instrument.with_sampled_out (fun () ->
          check "suppressed inside" true (Instrument.sampled_out ());
          check "tracing off inside" false (Instrument.tracing ());
          Instrument.event "quiet.point";
          Instrument.span "quiet.span" (fun () -> ()));
      check "suppression ends with the thunk" false (Instrument.sampled_out ());
      Instrument.event "loud.point";
      let events, _ = Instrument.ring_drain () in
      let names =
        List.filter_map
          (fun e -> Option.bind (Json.member "name" e) Json.to_string_opt)
          events
      in
      check "suppressed events never reached the ring" true
        (names = [ "loud.point" ]);
      (* every recorded line carries the process-wide attrs *)
      check "global attrs stamped" true
        (List.for_all
           (fun e -> Json.member "node" e = Some (Json.Str "t9"))
           events))

(* --- Golden: the machine-readable tables --- *)

let test_tables_json_golden () =
  (* Corollary 4.4 (Fig. 4): the e(s) values the paper states. *)
  let expected = [ (3, 2.8808); (4, 1.8133); (5, 1.6502); (8, 1.4721) ] in
  let j = roundtrip (Tables.to_json ~s_max:8 ()) in
  let fig4 =
    match Json.member "fig4" j with
    | Some f -> f
    | None -> Alcotest.fail "no fig4 key"
  in
  let rows =
    match Json.member "rows" fig4 with
    | Some (Json.List rows) -> rows
    | _ -> Alcotest.fail "no fig4 rows"
  in
  let e_of s =
    match
      List.find_opt (fun r -> Json.member "s" r = Some (Json.Int s)) rows
    with
    | Some r -> (
        match Json.member "e" r with
        | Some j -> Option.get (Json.to_float_opt j)
        | None -> Alcotest.fail "row lacks e")
    | None -> Alcotest.failf "no row for s=%d" s
  in
  List.iter
    (fun (s, paper) ->
      Alcotest.(check (float 5e-4))
        (Printf.sprintf "e(%d) matches Corollary 4.4" s)
        paper (e_of s))
    expected;
  match Json.member "inf" fig4 with
  | Some inf ->
      Alcotest.(check (float 5e-4))
        "e(inf) = 1.4404" 1.4404
        (Option.get (Json.to_float_opt (Option.get (Json.member "e" inf))))
  | None -> Alcotest.fail "no fig4 inf row"

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("json printing", `Quick, test_json_print);
    ("json escaping", `Quick, test_json_escaping);
    ("json adversarial round trip", `Quick, test_json_roundtrip_adversarial);
    ("json parse escapes", `Quick, test_json_parse_escapes);
    ("json parse rejects garbage", `Quick, test_json_parse_rejects);
    ("histogram known inputs", `Quick, test_histogram_known_inputs);
    ("histogram json shape", `Quick, test_histogram_json_shape);
    ("trace jsonl, 1 domain", `Quick, test_trace_single_domain);
    ("trace jsonl, 4 domains", `Quick, test_trace_multi_domain);
    ("trace context and head sampling", `Quick, test_trace_context);
    ("trace ring buffer", `Quick, test_trace_ring);
    ("sampled-out suppression", `Quick, test_sampled_out);
    ("engine round events", `Quick, test_engine_round_events);
    ("tables json golden (Cor 4.4)", `Quick, test_tables_json_golden);
    q prop_json_float_roundtrip;
    q prop_json_string_roundtrip;
  ]
