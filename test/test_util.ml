(* Unit and property tests for Gossip_util: bitsets, PRNG, numeric
   solvers, table rendering. *)

open Gossip_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Bitset --- *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check "empty" true (Bitset.is_empty s);
  check_int "cardinal 0" 0 (Bitset.cardinal s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check_int "cardinal 4" 4 (Bitset.cardinal s);
  check "mem 63" true (Bitset.mem s 63);
  check "mem 64" true (Bitset.mem s 64);
  check "not mem 65" false (Bitset.mem s 65);
  check "not mem out of range" false (Bitset.mem s 1000);
  Bitset.remove s 63;
  check "removed" false (Bitset.mem s 63);
  check_int "cardinal 3" 3 (Bitset.cardinal s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset: element 10 outside universe 10") (fun () ->
      Bitset.add s 10);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Bitset.create: negative capacity") (fun () ->
      ignore (Bitset.create (-1)))

let test_bitset_union () =
  let a = Bitset.of_list 50 [ 1; 2; 3 ] in
  let b = Bitset.of_list 50 [ 3; 4; 48 ] in
  let u = Bitset.union a b in
  check_int "union cardinal" 5 (Bitset.cardinal u);
  Alcotest.(check (list int)) "union elements" [ 1; 2; 3; 4; 48 ]
    (Bitset.elements u);
  let i = Bitset.inter a b in
  Alcotest.(check (list int)) "inter elements" [ 3 ] (Bitset.elements i);
  Bitset.union_into ~src:b ~dst:a;
  check "in place union" true (Bitset.equal a u)

let test_bitset_full () =
  let s = Bitset.create 65 in
  for i = 0 to 64 do
    Bitset.add s i
  done;
  check "full" true (Bitset.is_full s);
  Bitset.remove s 64;
  check "not full" false (Bitset.is_full s)

let test_bitset_subset () =
  let a = Bitset.of_list 20 [ 1; 5 ] in
  let b = Bitset.of_list 20 [ 1; 5; 9 ] in
  check "subset" true (Bitset.subset a b);
  check "not superset" false (Bitset.subset b a);
  check "copy independent" true
    (let c = Bitset.copy a in
     Bitset.add c 2;
     not (Bitset.mem a 2))

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/elements roundtrip" ~count:200
    QCheck.(small_list (int_bound 63))
    (fun xs ->
      let s = Bitset.of_list 64 xs in
      Bitset.elements s = List.sort_uniq compare xs)

let prop_bitset_union_card =
  QCheck.Test.make ~name:"bitset |A∪B| + |A∩B| = |A| + |B|" ~count:200
    QCheck.(pair (small_list (int_bound 99)) (small_list (int_bound 99)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
      Bitset.cardinal (Bitset.union a b) + Bitset.cardinal (Bitset.inter a b)
      = Bitset.cardinal a + Bitset.cardinal b)

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs = List.init 100 (fun _ -> Prng.int a 1000) in
  let ys = List.init 100 (fun _ -> Prng.int b 1000) in
  check "same seed same stream" true (xs = ys);
  let c = Prng.create 43 in
  let zs = List.init 100 (fun _ -> Prng.int c 1000) in
  check "different seed different stream" false (xs = zs)

let test_prng_bounds () =
  let rng = Prng.create 7 in
  let ok = ref true in
  for _ = 1 to 1000 do
    let x = Prng.int rng 17 in
    if x < 0 || x >= 17 then ok := false;
    let f = Prng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then ok := false
  done;
  check "int and float in range" true !ok;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_prng_shuffle_permutes () =
  let rng = Prng.create 5 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check "shuffle is a permutation" true (sorted = Array.init 50 Fun.id);
  check "shuffle moved something" true (a <> Array.init 50 Fun.id)

let test_prng_copy_split () =
  let a = Prng.create 1 in
  let b = Prng.copy a in
  check "copy continues identically" true
    (List.init 10 (fun _ -> Prng.int a 100)
    = List.init 10 (fun _ -> Prng.int b 100));
  let c = Prng.split a in
  check "split diverges" false
    (List.init 10 (fun _ -> Prng.int a 100)
    = List.init 10 (fun _ -> Prng.int c 100))

(* --- Numeric --- *)

let test_bisect () =
  let r = Numeric.bisect ~lo:0.0 ~hi:2.0 (fun x -> (x *. x) -. 2.0) in
  check "sqrt 2 by bisection" true (Float.abs (r -. sqrt 2.0) < 1e-9)

let test_brent () =
  let r = Numeric.brent ~lo:0.0 ~hi:2.0 (fun x -> (x *. x *. x) +. x -. 1.0) in
  check "brent root of x^3+x-1" true (Float.abs (r -. 0.6823278038) < 1e-9);
  (* endpoints that are already roots *)
  let z = Numeric.brent ~lo:0.0 ~hi:1.0 (fun x -> x) in
  check "root at endpoint" true (z = 0.0)

let test_brent_invalid_bracket () =
  Alcotest.check_raises "non-bracketing"
    (Invalid_argument
       "Numeric.brent: f(1)=1 and f(2)=4 do not bracket a root") (fun () ->
      ignore (Numeric.brent ~lo:1.0 ~hi:2.0 (fun x -> x *. x)))

let test_golden_max () =
  let x, v = Numeric.golden_max ~lo:0.0 ~hi:4.0 (fun x -> -.((x -. 1.3) ** 2.0)) in
  check "golden argmax" true (Float.abs (x -. 1.3) < 1e-6);
  check "golden max value" true (Float.abs v < 1e-10)

let test_grid_max_multimodal () =
  (* two humps; grid must find the global one near x = 3 (the overlap of
     the smaller hump shifts the true maximum slightly left of 3) *)
  let f x = exp (-.((x -. 3.0) ** 2.0)) +. (0.5 *. exp (-.((x -. 0.5) ** 2.0))) in
  let x, v = Numeric.grid_max ~lo:0.0 ~hi:4.0 f in
  check "grid_max finds global hump" true (Float.abs (x -. 3.0) < 1e-2);
  check "grid_max value at least f(3)" true (v >= f 3.0)

let test_log2_phi () =
  check "log2 8 = 3" true (Numeric.approx_equal (Numeric.log2 8.0) 3.0);
  check "phi satisfies phi^2 = phi + 1" true
    (Numeric.approx_equal (Numeric.phi ** 2.0) (Numeric.phi +. 1.0))

let prop_brent_vs_bisect =
  QCheck.Test.make ~name:"brent agrees with bisect on monotone cubics"
    ~count:100
    QCheck.(float_range 0.1 5.0)
    (fun a ->
      let f x = (x *. x *. x) +. (a *. x) -. 1.0 in
      let r1 = Numeric.brent ~lo:0.0 ~hi:1.0 f in
      let r2 = Numeric.bisect ~lo:0.0 ~hi:1.0 f in
      Float.abs (r1 -. r2) < 1e-8)

(* --- Parallel --- *)

let test_parallel_map_matches_sequential () =
  let arr = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  check "parallel map = sequential map" true
    (Parallel.map ~domains:4 f arr = Array.map f arr);
  check "parallel map 1 domain" true
    (Parallel.map ~domains:1 f arr = Array.map f arr);
  check "empty array" true (Parallel.map ~domains:4 f [||] = [||])

let test_parallel_init () =
  check "init matches" true
    (Parallel.init ~domains:3 257 (fun i -> i * 2) = Array.init 257 (fun i -> i * 2));
  check "init 0" true (Parallel.init ~domains:3 0 (fun i -> i) = [||])

let test_parallel_max_float () =
  let arr = Array.init 100 float_of_int in
  check "max" true
    (Parallel.max_float ~domains:4 (fun x -> -.((x -. 42.0) ** 2.0)) arr = 0.0);
  check "empty is neg_infinity" true
    (Parallel.max_float ~domains:2 Fun.id [||] = neg_infinity);
  check "recommended >= 1" true (Parallel.recommended_domains () >= 1)

let test_parallel_reduce () =
  (* max and exact integer sums are associative+commutative, so the
     reduction must agree with the sequential fold at every worker
     count. *)
  List.iter
    (fun n ->
      let f i = (i * 13) mod 257 in
      let sum_ref = ref 0 in
      for i = 0 to n - 1 do
        sum_ref := !sum_ref + f i
      done;
      let max_ref = ref min_int in
      for i = 0 to n - 1 do
        max_ref := max !max_ref (f i)
      done;
      List.iter
        (fun domains ->
          check (Printf.sprintf "reduce sum n=%d domains=%d" n domains) true
            (Parallel.reduce ~domains n f ( + ) 0 = !sum_ref);
          if n > 0 then
            check (Printf.sprintf "reduce max n=%d domains=%d" n domains) true
              (Parallel.reduce ~domains n f max min_int = !max_ref))
        [ 1; 2; 4; 7 ])
    [ 0; 1; 3; 100; 513 ];
  check "reduce empty returns init" true
    (Parallel.reduce ~domains:4 0 (fun _ -> assert false) ( + ) 42 = 42)

let prop_parallel_deterministic =
  QCheck.Test.make ~name:"parallel map deterministic across domain counts"
    ~count:30
    QCheck.(pair (small_list int) (int_range 1 6))
    (fun (xs, domains) ->
      let arr = Array.of_list xs in
      Parallel.map ~domains (fun x -> x + 1) arr
      = Array.map (fun x -> x + 1) arr)

let test_parallel_domains_sweep () =
  (* map/init/max_float must agree with the sequential result at every
     worker count, including the degenerate empty and singleton inputs. *)
  List.iter
    (fun n ->
      let arr = Array.init n (fun i -> (i * 37) mod 101) in
      let f x = (x * x) - (3 * x) in
      let g x = float_of_int x /. 7.0 in
      let map_ref = Array.map f arr in
      let init_ref = Array.init n (fun i -> i * i) in
      let max_ref =
        Array.fold_left (fun acc x -> Float.max acc (g x)) neg_infinity arr
      in
      List.iter
        (fun domains ->
          check (Printf.sprintf "map n=%d domains=%d" n domains) true
            (Parallel.map ~domains f arr = map_ref);
          check (Printf.sprintf "init n=%d domains=%d" n domains) true
            (Parallel.init ~domains n (fun i -> i * i) = init_ref);
          check (Printf.sprintf "max n=%d domains=%d" n domains) true
            (Parallel.max_float ~domains g arr = max_ref))
        [ 1; 2; 4 ])
    [ 0; 1; 513 ]

let test_parallel_default_override () =
  let before = Parallel.default_domains () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_default_domains before)
    (fun () ->
      Parallel.set_default_domains (Some 2);
      check "override stored" true (Parallel.default_domains () = Some 2);
      check "override wins" true (Parallel.recommended_domains () = 2);
      Alcotest.check_raises "zero rejected"
        (Invalid_argument "Parallel.set_default_domains: d < 1") (fun () ->
          Parallel.set_default_domains (Some 0));
      Parallel.set_default_domains None;
      check "cleared" true (Parallel.default_domains () = None);
      check "recommended >= 1" true (Parallel.recommended_domains () >= 1))

(* --- Table --- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.make ~title:"demo" [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1.00" ];
  Table.add_row t [ "beta"; "2.50" ];
  Table.add_sep t;
  let s = Table.render t in
  check "has title" true (contains ~sub:"== demo ==" s);
  check "contains alpha row" true (contains ~sub:"alpha" s);
  check "right-aligns numbers" true (contains ~sub:" 1.00 |" s);
  let lines = String.split_on_char '\n' s in
  check "enough lines" true (List.length lines >= 7)

let test_table_cells () =
  Alcotest.(check string) "float cell" "3.1416" (Table.cell_f 3.14159265);
  Alcotest.(check string) "float cell decimals" "3.14" (Table.cell_f ~decimals:2 3.14159);
  Alcotest.(check string) "int cell" "42" (Table.cell_i 42)

let test_table_errors () =
  let t = Table.make ~title:"" [ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "1"; "2" ])

(* --- Instrument --- *)

let test_instrument_records () =
  let was = Instrument.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Instrument.reset ();
      Instrument.set_enabled was)
    (fun () ->
      Instrument.set_enabled true;
      Instrument.reset ();
      check_int "span returns value" 42
        (Instrument.span "test.span" (fun () -> 41 + 1));
      ignore (Instrument.span "test.span" (fun () -> 0));
      Instrument.add "test.counter" 3;
      Instrument.add "test.counter" 2;
      check "span accumulated" true
        (List.exists
           (fun s ->
             s.Instrument.span_name = "test.span"
             && s.Instrument.calls = 2
             && s.Instrument.total_s >= 0.0
             && s.Instrument.max_s <= s.Instrument.total_s +. 1e-9)
           (Instrument.spans ()));
      check_int "counter accumulated" 5
        (List.assoc "test.counter" (Instrument.counters ()));
      check "summary names the span" true
        (contains ~sub:"test.span" (Instrument.summary_string ()));
      Instrument.reset ();
      check "reset clears" true
        (Instrument.spans () = [] && Instrument.counters () = []))

let test_instrument_disabled_is_silent () =
  let was = Instrument.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Instrument.reset ();
      Instrument.set_enabled was)
    (fun () ->
      Instrument.set_enabled false;
      Instrument.reset ();
      check_int "span still runs" 7 (Instrument.span "off.span" (fun () -> 7));
      check "no span timing recorded" true (Instrument.spans () = []);
      check "placeholder summary" true
        (contains ~sub:"nothing recorded" (Instrument.summary_string ()));
      (* The metrics registry is NOT gated on tracing: a counter bump
         always lands, so cache accounting is never silently dropped. *)
      Instrument.add "off.counter" 1;
      check_int "counter recorded while disabled" 1
        (List.assoc "off.counter" (Instrument.counters ())))

let test_instrument_span_exception () =
  let was = Instrument.enabled () in
  Fun.protect
    ~finally:(fun () ->
      Instrument.reset ();
      Instrument.set_enabled was)
    (fun () ->
      Instrument.set_enabled true;
      Instrument.reset ();
      Alcotest.check_raises "exception propagates" Exit (fun () ->
          Instrument.span "raising.span" (fun () -> raise Exit));
      check "time until the raise is recorded" true
        (List.exists
           (fun s -> s.Instrument.span_name = "raising.span")
           (Instrument.spans ())))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("bitset basic", `Quick, test_bitset_basic);
    ("bitset bounds", `Quick, test_bitset_bounds);
    ("bitset union/inter", `Quick, test_bitset_union);
    ("bitset full detection", `Quick, test_bitset_full);
    ("bitset subset/copy", `Quick, test_bitset_subset);
    ("prng determinism", `Quick, test_prng_deterministic);
    ("prng bounds", `Quick, test_prng_bounds);
    ("prng shuffle", `Quick, test_prng_shuffle_permutes);
    ("prng copy/split", `Quick, test_prng_copy_split);
    ("numeric bisect", `Quick, test_bisect);
    ("numeric brent", `Quick, test_brent);
    ("numeric brent invalid bracket", `Quick, test_brent_invalid_bracket);
    ("numeric golden max", `Quick, test_golden_max);
    ("numeric grid max multimodal", `Quick, test_grid_max_multimodal);
    ("numeric log2/phi", `Quick, test_log2_phi);
    ("parallel map", `Quick, test_parallel_map_matches_sequential);
    ("parallel init", `Quick, test_parallel_init);
    ("parallel max_float", `Quick, test_parallel_max_float);
    ("parallel reduce", `Quick, test_parallel_reduce);
    ("parallel domain sweep", `Quick, test_parallel_domains_sweep);
    ("parallel default override", `Quick, test_parallel_default_override);
    ("instrument records", `Quick, test_instrument_records);
    ("instrument disabled", `Quick, test_instrument_disabled_is_silent);
    ("instrument span exception", `Quick, test_instrument_span_exception);
    ("table render", `Quick, test_table_render);
    ("table cells", `Quick, test_table_cells);
    ("table errors", `Quick, test_table_errors);
    q prop_bitset_roundtrip;
    q prop_bitset_union_card;
    q prop_brent_vs_bisect;
    q prop_parallel_deterministic;
  ]
