(* cluster_ctl: poke a running cluster (or a single shard) over the wire.

   usage: cluster_ctl (--socket PATH | --tcp HOST:PORT) COMMAND
     health            print the health probe (cluster envelope on a router)
     metrics           print the metrics snapshot
     stats             print stats (membership + ring + shards on a router)
     members           print the membership table, one line per node
     digest            print the membership digest (convergence probe:
                       converged processes print the SAME digest)
     drain --node ID   mark shard ID draining: the router stops routing
                       new keys there while in-flight work completes
     traces [--max N] [--jsonl]
                       drain the recent-span ring buffers (the whole
                       fleet's when the target is a router); --jsonl
                       flattens the reply to raw JSON Lines ready to
                       stitch with trace_report.  Destructive: each
                       event is handed out once.
     shutdown          ask the target process to drain and exit

   Exit status: 0 on an ok reply, 1 on an error reply or unreachable
   target, 2 on usage errors.  CI's cluster soak scripts are built on
   `digest` (convergence equality across survivors), `drain`, `health`
   and `traces --jsonl` (trace stitching). *)

module Json = Gossip_util.Json
module Serve = Gossip_serve

let usage () =
  prerr_endline
    "usage: cluster_ctl (--socket PATH | --tcp HOST:PORT)\n\
    \         (health | metrics | stats | members | digest |\n\
    \          drain --node ID | traces [--max N] [--jsonl] | shutdown)";
  exit 2

let parse_target = function
  | "--socket" :: path :: rest -> (Serve.Server.Unix_socket path, rest)
  | "--tcp" :: hostport :: rest -> (
      match String.rindex_opt hostport ':' with
      | None -> usage ()
      | Some i -> (
          let host = String.sub hostport 0 i in
          let port =
            String.sub hostport (i + 1) (String.length hostport - i - 1)
          in
          match int_of_string_opt port with
          | Some p -> (Serve.Server.Tcp (host, p), rest)
          | None -> usage ()))
  | _ -> usage ()

let call target op =
  match Serve.Client.connect_retry ~attempts:5 ~delay:0.1 target with
  | exception e ->
      Printf.eprintf "cluster_ctl: cannot connect: %s\n%!"
        (Printexc.to_string e);
      exit 1
  | client -> (
      let r = Serve.Client.call client op in
      Serve.Client.close client;
      match r with
      | Error msg ->
          Printf.eprintf "cluster_ctl: %s\n%!" msg;
          exit 1
      | Ok { Serve.Wire.outcome = Error (code, msg); _ } ->
          Printf.eprintf "cluster_ctl: %s: %s\n%!"
            (Serve.Wire.error_code_to_string code)
            msg;
          exit 1
      | Ok { Serve.Wire.outcome = Ok result; _ } -> result)

let print_json j = print_endline (Json.to_string_pretty j)

(* Flatten a trace_pull reply to JSON Lines on stdout — the same shape
   a --trace-out file has, so `cluster_ctl traces --jsonl >> node.jsonl`
   composes directly with trace_report's multi-file stitch.  A shard
   answers gossip-traces/1; a router wraps its own ring plus every
   reachable shard's behind gossip-cluster-traces/1. *)
let rec print_trace_events j =
  let events j =
    match Json.member "events" j with
    | Some (Json.List evs) ->
        List.iter (fun e -> print_endline (Json.to_string e)) evs
    | _ -> ()
  in
  match Json.member "schema" j with
  | Some (Json.Str "gossip-traces/1") -> events j
  | Some (Json.Str "gossip-cluster-traces/1") ->
      (match Json.member "router" j with
      | Some r -> print_trace_events r
      | None -> ());
      (match Json.member "shards" j with
      | Some (Json.List shards) ->
          List.iter
            (fun s ->
              match Json.member "traces" s with
              | Some tr -> print_trace_events tr
              | None -> ())
            shards
      | _ -> ())
  | _ ->
      prerr_endline "cluster_ctl: unrecognized traces reply schema";
      exit 1

(* One readable line per member, for humans and for grep-based CI
   assertions: "node status inc hb role addr version". *)
let print_members view =
  match Gossip_cluster.Membership.entries_of_view view with
  | Error e ->
      Printf.eprintf "cluster_ctl: bad membership view: %s\n%!" e;
      exit 1
  | Ok entries ->
      List.iter
        (fun (e : Gossip_cluster.Membership.entry) ->
          Printf.printf "%s %s inc=%d hb=%d %s %s %s\n"
            e.Gossip_cluster.Membership.node
            (Gossip_cluster.Membership.status_to_string
               e.Gossip_cluster.Membership.status)
            e.Gossip_cluster.Membership.incarnation
            e.Gossip_cluster.Membership.heartbeat
            e.Gossip_cluster.Membership.role e.Gossip_cluster.Membership.addr
            e.Gossip_cluster.Membership.version)
        entries

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let target, rest = parse_target argv in
  match rest with
  | [ "health" ] -> print_json (call target Serve.Wire.Health)
  | [ "metrics" ] -> print_json (call target Serve.Wire.Metrics)
  | [ "stats" ] -> print_json (call target Serve.Wire.Stats)
  | [ "members" ] -> (
      (* a router's stats embed the view; a bare shard answers gossip
         ops directly, so fall back to an empty-merge gossip exchange *)
      let stats = call target Serve.Wire.Stats in
      match Json.member "membership" stats with
      | Some view -> print_members view
      | None ->
          Printf.eprintf
            "cluster_ctl: target has no membership view (not a router?)\n%!";
          exit 1)
  | [ "digest" ] -> (
      let r = call target Serve.Wire.Mem_digest in
      match Json.member "digest" r with
      | Some (Json.Str d) -> print_endline d
      | _ ->
          prerr_endline "cluster_ctl: malformed digest reply";
          exit 1)
  | [ "drain"; "--node"; node ] ->
      print_json (call target (Serve.Wire.Drain { node = Some node }))
  | "traces" :: rest ->
      let max_n = ref 512 and jsonl = ref false in
      let rec go = function
        | [] -> ()
        | "--max" :: n :: r ->
            (match int_of_string_opt n with
            | Some v when v >= 1 -> max_n := v
            | _ -> usage ());
            go r
        | "--jsonl" :: r ->
            jsonl := true;
            go r
        | _ -> usage ()
      in
      go rest;
      let reply = call target (Serve.Wire.Trace_pull { max = !max_n }) in
      if !jsonl then print_trace_events reply else print_json reply
  | [ "shutdown" ] -> print_json (call target Serve.Wire.Shutdown)
  | _ -> usage ()
