(* json_lint: validate JSON produced by the telemetry layer.

   Modes (selected by argv):
     (none)        stdin holds one JSON document; parse it strictly
     --jsonl       stdin holds JSON Lines; every non-empty line must parse
     --trace       JSON Lines as above, plus trace-specific checks: every
                   line is an object with an "ev" field, and span_begin /
                   span_end events balance per (domain, span name)
     --fault-cert  one JSON document carrying (or containing under a
                   "certificate" field) a gossip-fault-cert/1 artifact;
                   schema fields are checked for presence and type, and
                   the verdict for consistency (certified <=> no
                   counterexample, exhaustive <=> confidence 1)

   Exit status 0 when valid; 1 with a diagnostic on stderr otherwise.
   Used by CI to validate `gossip_lab ... --json` output, bench reports
   and GOSSIP_TRACE_FILE streams with the same parser the test suite
   exercises. *)

module Json = Gossip_util.Json

let read_all ic =
  let buf = Buffer.create 65536 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let lint_json src =
  match Json.of_string src with
  | Ok _ -> ()
  | Error e -> fail "invalid JSON: %s" e

let lint_lines ~trace src =
  (* (dom, span name) -> open span count; trace mode only *)
  let open_spans = Hashtbl.create 64 in
  let events = ref 0 in
  let check_trace_line lineno j =
    let str_field name =
      match Json.member name j with
      | Some (Json.Str s) -> Some s
      | _ -> None
    in
    let dom =
      match Json.member "dom" j with Some (Json.Int d) -> d | _ -> -1
    in
    match str_field "ev" with
    | None -> fail "line %d: trace event lacks an \"ev\" field" lineno
    | Some ev -> (
        let name = match str_field "name" with Some n -> n | None -> "" in
        let key = (dom, name) in
        let count = try Hashtbl.find open_spans key with Not_found -> 0 in
        match ev with
        | "span_begin" -> Hashtbl.replace open_spans key (count + 1)
        | "span_end" ->
            if count = 0 then
              fail "line %d: span_end %S (dom %d) without matching span_begin"
                lineno name dom
            else Hashtbl.replace open_spans key (count - 1)
        | _ -> ())
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if String.trim line <> "" then begin
        incr events;
        match Json.of_string line with
        | Error e -> fail "line %d: invalid JSON: %s" lineno e
        | Ok j -> if trace then check_trace_line lineno j
      end)
    (String.split_on_char '\n' src);
  if trace then
    Hashtbl.iter
      (fun (dom, name) count ->
        if count <> 0 then
          fail "unbalanced span %S (dom %d): %d span_begin without span_end"
            name dom count)
      open_spans;
  Printf.printf "ok: %d line(s) valid\n" !events

(* --- gossip-fault-cert/1 --- *)

let lint_fault_cert src =
  let j =
    match Json.of_string src with
    | Ok j -> j
    | Error e -> fail "invalid JSON: %s" e
  in
  (* accept both the bare artifact and the CLI/server envelopes that
     nest it under "certificate" *)
  let cert =
    match Json.member "schema" j with
    | Some _ -> j
    | None -> (
        let rec dig j =
          match Json.member "certificate" j with
          | Some c -> Some c
          | None -> (
              match Json.member "result" j with
              | Some r -> dig r
              | None -> None)
        in
        match dig j with
        | Some c -> c
        | None -> fail "no gossip-fault-cert/1 artifact found")
  in
  let get key =
    match Json.member key cert with
    | Some v -> v
    | None -> fail "certificate lacks field %S" key
  in
  let want_str key =
    match get key with
    | Json.Str s -> s
    | _ -> fail "field %S must be a string" key
  in
  let want_int key =
    match get key with
    | Json.Int i -> i
    | _ -> fail "field %S must be an integer" key
  in
  let want_int_or_null key =
    match get key with
    | Json.Int i -> Some i
    | Json.Null -> None
    | _ -> fail "field %S must be an integer or null" key
  in
  let want_float key =
    match get key with
    | Json.Float f -> f
    | Json.Int i -> float_of_int i
    | _ -> fail "field %S must be a number" key
  in
  let want_arc_list key =
    match get key with
    | Json.List arcs ->
        List.iter
          (function
            | Json.List [ Json.Int _; Json.Int _ ] -> ()
            | _ -> fail "field %S must be a list of [u, v] arc pairs" key)
          arcs;
        List.length arcs
    | _ -> fail "field %S must be a list" key
  in
  if want_str "schema" <> "gossip-fault-cert/1" then
    fail "schema must be \"gossip-fault-cert/1\"";
  ignore (want_str "scheme");
  ignore (want_str "fingerprint");
  ignore (want_str "mode");
  let n = want_int "n" in
  let k = want_int "k" in
  let arcs = want_int "arcs" in
  ignore (want_int "period");
  ignore (want_int "seed");
  ignore (want_int "budget");
  ignore (want_int "cap");
  ignore (want_int_or_null "fault_free_time");
  ignore (want_int_or_null "worst_time");
  ignore (want_arc_list "worst_pattern");
  if n < 0 then fail "n must be >= 0";
  if k < 0 then fail "k must be >= 0";
  if k > arcs then fail "k = %d exceeds the %d-arc universe" k arcs;
  let cert_mode = want_str "cert_mode" in
  if cert_mode <> "exhaustive" && cert_mode <> "sampled" then
    fail "cert_mode must be \"exhaustive\" or \"sampled\" (got %S)" cert_mode;
  let total = want_int "patterns_total" in
  let checked = want_int "patterns_checked" in
  if checked < 0 || total < 0 then fail "pattern counts must be >= 0";
  let confidence = want_float "confidence" in
  if confidence < 0.0 || confidence > 1.0 then
    fail "confidence must be in [0, 1]";
  if cert_mode = "exhaustive" && confidence <> 1.0 then
    fail "exhaustive certificates must report confidence 1";
  let certified =
    match get "certified" with
    | Json.Bool b -> b
    | _ -> fail "field \"certified\" must be a boolean"
  in
  (match get "counterexample" with
  | Json.Null ->
      if not certified then
        fail "uncertified verdict must carry a counterexample"
  | Json.Obj _ as cx ->
      if certified then fail "certified verdict must not carry a counterexample";
      let size =
        match Json.member "pattern" cx with
        | Some (Json.List arcs) ->
            List.iter
              (function
                | Json.List [ Json.Int _; Json.Int _ ] -> ()
                | _ -> fail "counterexample pattern must hold [u, v] pairs")
              arcs;
            List.length arcs
        | _ -> fail "counterexample lacks a \"pattern\" list"
      in
      if size > k then
        fail "counterexample kills %d arcs but k = %d" size k;
      (match Json.member "rounds_run" cx with
      | Some (Json.Int _) -> ()
      | _ -> fail "counterexample lacks an integer \"rounds_run\"");
      (match Json.member "coverage" cx with
      | Some (Json.Float _ | Json.Int _) -> ()
      | _ -> fail "counterexample lacks a numeric \"coverage\"")
  | _ -> fail "field \"counterexample\" must be an object or null");
  Printf.printf "ok: gossip-fault-cert/1 (%s, k=%d, %s)\n"
    (want_str "scheme") k
    (if certified then "certified" else "counterexample")

let () =
  let src = read_all stdin in
  match List.tl (Array.to_list Sys.argv) with
  | [] -> lint_json src
  | [ "--jsonl" ] -> lint_lines ~trace:false src
  | [ "--trace" ] -> lint_lines ~trace:true src
  | [ "--fault-cert" ] -> lint_fault_cert src
  | _ ->
      prerr_endline "usage: json_lint [--jsonl | --trace | --fault-cert] < input";
      exit 2
