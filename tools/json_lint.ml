(* json_lint: validate JSON produced by the telemetry layer.

   Modes (selected by argv):
     (none)    stdin holds one JSON document; parse it strictly
     --jsonl   stdin holds JSON Lines; every non-empty line must parse
     --trace   JSON Lines as above, plus trace-specific checks: every
               line is an object with an "ev" field, and span_begin /
               span_end events balance per (domain, span name)

   Exit status 0 when valid; 1 with a diagnostic on stderr otherwise.
   Used by CI to validate `gossip_lab ... --json` output, bench reports
   and GOSSIP_TRACE_FILE streams with the same parser the test suite
   exercises. *)

module Json = Gossip_util.Json

let read_all ic =
  let buf = Buffer.create 65536 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let lint_json src =
  match Json.of_string src with
  | Ok _ -> ()
  | Error e -> fail "invalid JSON: %s" e

let lint_lines ~trace src =
  (* (dom, span name) -> open span count; trace mode only *)
  let open_spans = Hashtbl.create 64 in
  let events = ref 0 in
  let check_trace_line lineno j =
    let str_field name =
      match Json.member name j with
      | Some (Json.Str s) -> Some s
      | _ -> None
    in
    let dom =
      match Json.member "dom" j with Some (Json.Int d) -> d | _ -> -1
    in
    match str_field "ev" with
    | None -> fail "line %d: trace event lacks an \"ev\" field" lineno
    | Some ev -> (
        let name = match str_field "name" with Some n -> n | None -> "" in
        let key = (dom, name) in
        let count = try Hashtbl.find open_spans key with Not_found -> 0 in
        match ev with
        | "span_begin" -> Hashtbl.replace open_spans key (count + 1)
        | "span_end" ->
            if count = 0 then
              fail "line %d: span_end %S (dom %d) without matching span_begin"
                lineno name dom
            else Hashtbl.replace open_spans key (count - 1)
        | _ -> ())
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if String.trim line <> "" then begin
        incr events;
        match Json.of_string line with
        | Error e -> fail "line %d: invalid JSON: %s" lineno e
        | Ok j -> if trace then check_trace_line lineno j
      end)
    (String.split_on_char '\n' src);
  if trace then
    Hashtbl.iter
      (fun (dom, name) count ->
        if count <> 0 then
          fail "unbalanced span %S (dom %d): %d span_begin without span_end"
            name dom count)
      open_spans;
  Printf.printf "ok: %d line(s) valid\n" !events

let () =
  let src = read_all stdin in
  match List.tl (Array.to_list Sys.argv) with
  | [] -> lint_json src
  | [ "--jsonl" ] -> lint_lines ~trace:false src
  | [ "--trace" ] -> lint_lines ~trace:true src
  | _ ->
      prerr_endline "usage: json_lint [--jsonl | --trace] < input";
      exit 2
