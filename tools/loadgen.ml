(* loadgen: hammer a running gossip_served with concurrent connections.

   usage: loadgen (--socket PATH | --tcp HOST:PORT)
            [--connections N]   client connections, one thread each (2)
            [--requests N]      total requests across connections (100)
            [--mix SPEC]        weighted op mix, e.g. "tables:4,bound:3,
                                ping:2,simulate:1" (that is the default)
            [--timeout-ms MS]   per-request deadline sent with each call
            [--trace-sample-rate RATE]
                                mint a distributed trace context on each
                                request (loadgen is the trace edge),
                                head-sampled at RATE; the report and
                                stdout gain the top slowest requests
                                with their trace ids, ready to grep in
                                stitched trace_report output (0, off)
            [--report PATH]     write the JSON report there (default stdout)
            [--require-cache-hits]  exit 1 unless the server reports
                                    context cache hits > 0
            [--expect-healthy]  exit 1 unless `health` reports "ok"
                                (polled for up to 5 s after the drain)
            [--chaos-tolerant]  drive each connection through
                                Serve.Resilient_client: reconnects,
                                bounded retries with backoff, per-call
                                budgets, stale-reply dropping
            [--max-attempts N]        retry policy (chaos mode; 6)
            [--attempt-timeout-ms MS] per-attempt reply deadline (1000)
            [--call-budget-ms MS]     per-call wall budget (10000)
            [--min-restarts N]  exit 1 unless the server's
                                worker_restarts gauge is >= N

   Emits a `gossip-loadgen/1` JSON report: throughput, latency
   percentiles (p50/p95/p99), per-op and per-error-code counts, and the
   server's own view fetched post-run: `stats` (cache), `metrics`
   (rolling windows + cumulative totals) and `health`.  In chaos mode
   the report adds a `resilience` object (attempts, retries,
   reconnects, stale replies dropped, garbled frames tolerated) and a
   `gave_ups` count of calls whose retries ran out.

   Every request must be accounted for exactly once — success, explicit
   server error, protocol error, or gave-up; the report's `unaccounted`
   field is the difference and any non-zero value fails the run.  That
   is the chaos soak's headline guarantee: injected faults may slow
   calls down or fail them *explicitly*, but can never lose one
   silently.

   The server totals are cross-checked against the client-side per-op
   counts: because the server records each request before sending its
   reply, by the time every reply has arrived the server-side count for
   an op can never be below the client-side count (it can be above —
   retried attempts and earlier runs against the same server also
   accumulated).  A lower server count on a clean run means lost
   accounting and fails the run.

   Exit status: 0 on a clean run; 1 when any reply was dropped or
   garbled (a *protocol* error — valid error replies such as queue_full
   are counted separately, not failures), when any request is
   unaccounted, when the metrics cross-check fails on an otherwise
   clean run, or when --require-cache-hits / --expect-healthy /
   --min-restarts is not met.  Used by CI as the end-to-end gate
   (doc/serving.md, doc/robustness.md). *)

module Json = Gossip_util.Json
module Serve = Gossip_serve

let usage () =
  prerr_endline
    "usage: loadgen (--socket PATH | --tcp HOST:PORT) [--connections N]\n\
    \         [--requests N] [--mix SPEC] [--timeout-ms MS]\n\
    \         [--trace-sample-rate RATE] [--report PATH]\n\
    \         [--require-cache-hits] [--expect-healthy] [--chaos-tolerant]\n\
    \         [--max-attempts N] [--attempt-timeout-ms MS]\n\
    \         [--call-budget-ms MS] [--min-restarts N] [--cluster]";
  exit 2

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("loadgen: " ^ m); exit 2) fmt

(* --- request mix --- *)

(* Parameter sets rotated through by request index: repetition is the
   point (the server's cache should absorb it), variety keeps more than
   one artifact in play. *)
let nets =
  [|
    { Serve.Wire.family = "cycle"; dim = 16; degree = 2 };
    { Serve.Wire.family = "hypercube"; dim = 4; degree = 2 };
    { Serve.Wire.family = "db"; dim = 3; degree = 2 };
    { Serve.Wire.family = "complete"; dim = 8; degree = 2 };
  |]

let op_of_name name i =
  let net = nets.(i mod Array.length nets) in
  match name with
  | "ping" -> Serve.Wire.Ping
  | "version" -> Serve.Wire.Version
  | "stats" -> Serve.Wire.Stats
  | "metrics" -> Serve.Wire.Metrics
  | "health" -> Serve.Wire.Health
  | "spans" -> Serve.Wire.Spans
  | "sleep" -> Serve.Wire.Sleep { ms = 10 }
  | "tables" -> Serve.Wire.Tables { s_max = 8; ss = [ 3; 4; 5; 6; 7; 8 ] }
  | "bound" -> Serve.Wire.Bound { net; s = Some 4; full_duplex = false }
  | "simulate" -> Serve.Wire.Simulate { net; full_duplex = false }
  | "certify" ->
      Serve.Wire.Certify
        { spec = Serve.Wire.Built { net; full_duplex = false }; refine = false }
  | "certify_faults" ->
      (* deliberately small and parameter-stable: repeats hit the
         context's fault_cert shelf, which --require-cache-hits gates *)
      Serve.Wire.Certify_faults
        {
          family = "cycle";
          n = 12;
          k = 1;
          budget = 64;
          seed = 1;
          degree = 2;
          full_duplex = false;
          harden = "augment";
          cap = 0;
        }
  | other -> fail "unknown op %S in mix" other

let parse_mix spec =
  let entries =
    List.filter_map
      (fun tok ->
        let tok = String.trim tok in
        if tok = "" then None
        else
          match String.split_on_char ':' tok with
          | [ name; weight ] -> (
              match int_of_string_opt weight with
              | Some w when w > 0 -> Some (name, w)
              | _ -> fail "bad weight in mix entry %S" tok)
          | [ name ] -> Some (name, 1)
          | _ -> fail "bad mix entry %S" tok)
      (String.split_on_char ',' spec)
  in
  if entries = [] then fail "empty mix";
  (* weighted round-robin: expand weights into a repeating schedule *)
  Array.of_list
    (List.concat_map (fun (name, w) -> List.init w (fun _ -> name)) entries)

(* --- argument parsing --- *)

type args = {
  target : Serve.Server.listen;
  connections : int;
  requests : int;
  mix : string array;
  timeout_ms : int option;
  trace_sample_rate : float;
      (* > 0 makes the loadgen the trace edge: every request carries a
         freshly minted context, head-sampled at this rate *)
  report : string option;
  require_cache_hits : bool;
  expect_healthy : bool;
  chaos_tolerant : bool;
  max_attempts : int;
  attempt_timeout_ms : int;
  call_budget_ms : int;
  min_restarts : int;
  cluster : bool;
      (* the target is a gossip_router: post-run snapshots are the
         gossip-cluster-*/1 envelopes, the metrics cross-check reads the
         router's own totals, and the run additionally audits
         fingerprint affinity by recomputing every request's ring
         placement *)
}

let parse_args () =
  let target = ref None
  and connections = ref 2
  and requests = ref 100
  and mix = ref "tables:4,bound:3,ping:2,simulate:1"
  and timeout_ms = ref None
  and trace_sample_rate = ref 0.0
  and report = ref None
  and require_cache_hits = ref false
  and expect_healthy = ref false
  and chaos_tolerant = ref false
  and max_attempts = ref 6
  and attempt_timeout_ms = ref 1000
  and call_budget_ms = ref 10_000
  and min_restarts = ref 0
  and cluster = ref false in
  let rec go = function
    | [] -> ()
    | "--socket" :: path :: rest ->
        target := Some (Serve.Server.Unix_socket path);
        go rest
    | "--tcp" :: hostport :: rest ->
        (match String.rindex_opt hostport ':' with
        | Some i -> (
            let host = String.sub hostport 0 i in
            let port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
            match int_of_string_opt port with
            | Some p -> target := Some (Serve.Server.Tcp (host, p))
            | None -> usage ())
        | None -> usage ());
        go rest
    | "--connections" :: n :: rest ->
        connections := (match int_of_string_opt n with Some v when v >= 1 -> v | _ -> usage ());
        go rest
    | "--requests" :: n :: rest ->
        requests := (match int_of_string_opt n with Some v when v >= 1 -> v | _ -> usage ());
        go rest
    | "--mix" :: spec :: rest ->
        mix := spec;
        go rest
    | "--timeout-ms" :: ms :: rest ->
        timeout_ms := (match int_of_string_opt ms with Some v when v >= 0 -> Some v | _ -> usage ());
        go rest
    | "--trace-sample-rate" :: rate :: rest ->
        trace_sample_rate :=
          (match float_of_string_opt rate with
          | Some v when v >= 0.0 && v <= 1.0 -> v
          | _ -> usage ());
        go rest
    | "--report" :: path :: rest ->
        report := Some path;
        go rest
    | "--require-cache-hits" :: rest ->
        require_cache_hits := true;
        go rest
    | "--expect-healthy" :: rest ->
        expect_healthy := true;
        go rest
    | "--chaos-tolerant" :: rest ->
        chaos_tolerant := true;
        go rest
    | "--max-attempts" :: n :: rest ->
        max_attempts := (match int_of_string_opt n with Some v when v >= 1 -> v | _ -> usage ());
        go rest
    | "--attempt-timeout-ms" :: ms :: rest ->
        attempt_timeout_ms := (match int_of_string_opt ms with Some v when v >= 1 -> v | _ -> usage ());
        go rest
    | "--call-budget-ms" :: ms :: rest ->
        call_budget_ms := (match int_of_string_opt ms with Some v when v >= 1 -> v | _ -> usage ());
        go rest
    | "--min-restarts" :: n :: rest ->
        min_restarts := (match int_of_string_opt n with Some v when v >= 0 -> v | _ -> usage ());
        go rest
    | "--cluster" :: rest ->
        cluster := true;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  match !target with
  | None -> usage ()
  | Some target ->
      {
        target;
        connections = !connections;
        requests = !requests;
        mix = parse_mix !mix;
        timeout_ms = !timeout_ms;
        trace_sample_rate = !trace_sample_rate;
        report = !report;
        require_cache_hits = !require_cache_hits;
        expect_healthy = !expect_healthy;
        chaos_tolerant = !chaos_tolerant;
        max_attempts = !max_attempts;
        attempt_timeout_ms = !attempt_timeout_ms;
        call_budget_ms = !call_budget_ms;
        min_restarts = !min_restarts;
        cluster = !cluster;
      }

(* --- measurement --- *)

type tally = {
  mutable ok : int;
  mutable protocol_errors : int;
  mutable gave_ups : int;  (* chaos mode: retries/budget ran out *)
  by_code : (string, int) Hashtbl.t;
  by_op : (string, int * float) Hashtbl.t;  (* count, summed ms *)
  mutable latencies_ms : float list;
  (* requests that carried a sampled trace context: (latency_ms, op,
     trace_id), for the slowest-requests exemplar table *)
  mutable traced : (float * string * string) list;
  (* resilience counters, merged from each connection's client *)
  mutable r_attempts : int;
  mutable r_retries : int;
  mutable r_reconnects : int;
  mutable r_stale_dropped : int;
  mutable r_garbled : int;
  mu : Mutex.t;
}

let now_s () = Unix.gettimeofday ()

let record tally ?trace_id ~op_name ~latency_ms outcome =
  Mutex.lock tally.mu;
  (match trace_id with
  | Some tid -> tally.traced <- (latency_ms, op_name, tid) :: tally.traced
  | None -> ());
  (match outcome with
  | `Ok -> tally.ok <- tally.ok + 1
  | `Server_error code ->
      let key = Serve.Wire.error_code_to_string code in
      Hashtbl.replace tally.by_code key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally.by_code key))
  | `Gave_up msg ->
      tally.gave_ups <- tally.gave_ups + 1;
      Printf.eprintf "loadgen: gave up: %s\n%!" msg
  | `Protocol msg ->
      tally.protocol_errors <- tally.protocol_errors + 1;
      Printf.eprintf "loadgen: protocol error: %s\n%!" msg);
  let count, sum =
    Option.value ~default:(0, 0.0) (Hashtbl.find_opt tally.by_op op_name)
  in
  Hashtbl.replace tally.by_op op_name (count + 1, sum +. latency_ms);
  tally.latencies_ms <- latency_ms :: tally.latencies_ms;
  Mutex.unlock tally.mu

let merge_resilience tally (s : Serve.Resilient_client.stats) =
  Mutex.lock tally.mu;
  tally.r_attempts <- tally.r_attempts + s.Serve.Resilient_client.attempts;
  tally.r_retries <- tally.r_retries + s.Serve.Resilient_client.retries;
  tally.r_reconnects <- tally.r_reconnects + s.Serve.Resilient_client.reconnects;
  tally.r_stale_dropped <-
    tally.r_stale_dropped + s.Serve.Resilient_client.stale_dropped;
  tally.r_garbled <- tally.r_garbled + s.Serve.Resilient_client.garbled;
  Mutex.unlock tally.mu

(* The loadgen is the trace edge: a fresh root context per request,
   head-sampled so fleets under heavy storms stream only a slice.  The
   trace id is recorded only when the verdict was "keep" — an exemplar
   pointing at spans nobody streamed would be noise. *)
let mint_trace args =
  if args.trace_sample_rate > 0.0 then
    Some (Gossip_util.Trace.mint ~sample_rate:args.trace_sample_rate ())
  else None

let trace_id_if_sampled trace =
  match trace with
  | Some tr when tr.Gossip_util.Trace.sampled ->
      Some tr.Gossip_util.Trace.trace_id
  | _ -> None

let run_connection args tally ~conn_index ~first ~count =
  match Serve.Client.connect_retry args.target with
  | exception e ->
      Mutex.lock tally.mu;
      tally.protocol_errors <- tally.protocol_errors + count;
      Mutex.unlock tally.mu;
      Printf.eprintf "loadgen: connection %d failed: %s\n%!" conn_index
        (Printexc.to_string e)
  | client ->
      for k = 0 to count - 1 do
        let i = first + k in
        let name = args.mix.(i mod Array.length args.mix) in
        let op = op_of_name name i in
        let id = Json.Int i in
        let trace = mint_trace args in
        let t0 = now_s () in
        let outcome =
          match
            Serve.Client.call client ~id ?timeout_ms:args.timeout_ms ?trace op
          with
          | Error msg -> `Protocol msg
          | Ok resp ->
              if resp.Serve.Wire.resp_id <> id then
                `Protocol
                  (Printf.sprintf "response id mismatch on request %d" i)
              else (
                match resp.Serve.Wire.outcome with
                | Ok _ -> `Ok
                | Error (code, _) -> `Server_error code)
        in
        record tally
          ?trace_id:(trace_id_if_sampled trace)
          ~op_name:name
          ~latency_ms:((now_s () -. t0) *. 1000.0)
          outcome
      done;
      Serve.Client.close client

(* Chaos-tolerant twin of [run_connection]: the resilient client retries
   transport faults and retryable server errors internally, so every
   call lands in exactly one bucket — ok, explicit server error, or
   gave-up.  Each connection gets its own jitter seed so backoffs
   decorrelate. *)
let run_connection_resilient args tally ~conn_index ~first ~count =
  let policy =
    {
      Serve.Resilient_client.default_policy with
      Serve.Resilient_client.max_attempts = args.max_attempts;
      attempt_timeout_ms = args.attempt_timeout_ms;
      call_budget_ms = args.call_budget_ms;
    }
  in
  match
    Serve.Resilient_client.connect ~policy ~seed:(0x10ad + conn_index)
      args.target
  with
  | exception e ->
      Mutex.lock tally.mu;
      tally.protocol_errors <- tally.protocol_errors + count;
      Mutex.unlock tally.mu;
      Printf.eprintf "loadgen: connection %d failed: %s\n%!" conn_index
        (Printexc.to_string e)
  | client ->
      for k = 0 to count - 1 do
        let i = first + k in
        let name = args.mix.(i mod Array.length args.mix) in
        let op = op_of_name name i in
        let trace = mint_trace args in
        let t0 = now_s () in
        let outcome =
          match
            Serve.Resilient_client.call client ?timeout_ms:args.timeout_ms
              ?trace op
          with
          | Ok _ -> `Ok
          | Error (Serve.Resilient_client.Fatal (code, _)) ->
              `Server_error code
          | Error (Serve.Resilient_client.Exhausted msg) ->
              `Gave_up (Printf.sprintf "request %d (%s): %s" i name msg)
        in
        record tally
          ?trace_id:(trace_id_if_sampled trace)
          ~op_name:name
          ~latency_ms:((now_s () -. t0) *. 1000.0)
          outcome
      done;
      merge_resilience tally (Serve.Resilient_client.stats client);
      Serve.Resilient_client.close client

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(min hi (n - 1)) *. frac)

let fetch_op args op =
  match Serve.Client.connect_retry args.target with
  | exception _ -> None
  | client ->
      let r = Serve.Client.call client op in
      Serve.Client.close client;
      (match r with
      | Ok { Serve.Wire.outcome = Ok result; _ } -> Some result
      | _ -> None)

(* Ops the loadgen itself (or its post-run probes) may have issued
   outside the measured mix; excluded from the count cross-check. *)
let meta_ops = [ "stats"; "metrics"; "health"; "spans" ]

(* Server-side count for [op] from the metrics snapshot's cumulative
   totals; None when the snapshot lacks it. *)
let server_op_count metrics op =
  Option.bind (Json.member "totals" metrics) (fun t ->
      Option.bind (Json.member "ops" t) (fun ops ->
          Option.bind (Json.member op ops) (fun o ->
              Option.bind (Json.member "count" o) Json.to_int_opt)))

(* The invariant (server observes before it replies) gives
   server >= client per op once all replies are in; strict equality
   would be wrong when earlier runs hit the same server. *)
let crosscheck tally metrics =
  match metrics with
  | None -> (Json.Null, true)
  | Some m ->
      let rows, all_ok =
        Hashtbl.fold
          (fun op (client_count, _) (rows, all_ok) ->
            if List.mem op meta_ops then (rows, all_ok)
            else
              let server = server_op_count m op in
              let consistent =
                match server with Some s -> s >= client_count | None -> false
              in
              ( ( op,
                  Json.Obj
                    [
                      ("client", Json.Int client_count);
                      ( "server",
                        match server with
                        | Some s -> Json.Int s
                        | None -> Json.Null );
                      ("consistent", Json.Bool consistent);
                    ] )
                :: rows,
                all_ok && consistent ))
          tally.by_op ([], true)
      in
      ( Json.Obj
          (List.sort compare rows @ [ ("consistent", Json.Bool all_ok) ]),
        all_ok )

(* --- cluster mode: fingerprint-affinity audit --- *)

module Cluster = Gossip_cluster

(* Recompute every keyed request's placement exactly as the router
   places it — same routing key, same ring construction — over ALL
   shards the membership has ever seen, dead and draining included:
   consistent hashing only moves the departed node's keys, so a key
   whose full-ring primary survived the whole run was routed there the
   whole run.  The audit gates [reported >= expected] per (shard, op),
   but only for shards still alive at the end — a killed or drained
   shard cannot answer the metrics probe, and its keys' counts landed
   on replicas.  [>=] rather than [=]: rejected requests, retried
   attempts and earlier runs also accumulate server-side. *)
let cluster_audit args ~stats ~metrics =
  match (stats : Json.t option) with
  | None -> (Json.Null, false, [])
  | Some s ->
      let entries =
        match Json.member "membership" s with
        | Some view -> (
            match Cluster.Membership.entries_of_view view with
            | Ok e -> e
            | Error _ -> [])
        | None -> []
      in
      let shards =
        List.filter
          (fun (e : Cluster.Membership.entry) ->
            e.Cluster.Membership.role = "shard")
          entries
      in
      let vnodes =
        Option.value ~default:64
          (Option.bind (Json.member "ring" s) (fun r ->
               Option.bind (Json.member "vnodes" r) Json.to_int_opt))
      in
      let ring =
        Cluster.Ring.create ~vnodes
          (List.map
             (fun (e : Cluster.Membership.entry) -> e.Cluster.Membership.node)
             shards)
      in
      let expected = Hashtbl.create 16 in
      for i = 0 to args.requests - 1 do
        let name = args.mix.(i mod Array.length args.mix) in
        let op = op_of_name name i in
        match Cluster.Router.routing_key op with
        | None -> ()
        | Some key -> (
            match Cluster.Ring.lookup ring key with
            | None -> ()
            | Some node ->
                let k = (node, name) in
                Hashtbl.replace expected k
                  (1 + Option.value ~default:0 (Hashtbl.find_opt expected k)))
      done;
      let shard_metrics node =
        Option.bind metrics (fun m ->
            Option.bind (Json.member "shards" m) (function
              | Json.List items ->
                  List.find_map
                    (fun item ->
                      match Json.member "node" item with
                      | Some (Json.Str n) when n = node ->
                          Json.member "metrics" item
                      | _ -> None)
                    items
              | _ -> None))
      in
      let alive node =
        List.exists
          (fun (e : Cluster.Membership.entry) ->
            e.Cluster.Membership.node = node
            && e.Cluster.Membership.status = Cluster.Membership.Alive)
          shards
      in
      let rows, all_ok =
        Hashtbl.fold
          (fun (node, op) exp (rows, all_ok) ->
            let reported =
              Option.bind (shard_metrics node) (fun m -> server_op_count m op)
            in
            let gated = alive node in
            let ok =
              (not gated)
              || match reported with Some r -> r >= exp | None -> false
            in
            ( ( Printf.sprintf "%s/%s" node op,
                Json.Obj
                  [
                    ("expected", Json.Int exp);
                    ( "reported",
                      match reported with
                      | Some r -> Json.Int r
                      | None -> Json.Null );
                    ("gated", Json.Bool gated);
                    ("ok", Json.Bool ok);
                  ] )
              :: rows,
              all_ok && ok ))
          expected ([], true)
      in
      ( Json.Obj
          [
            ( "membership",
              Json.List
                (List.map Cluster.Membership.entry_json
                   (List.filter
                      (fun (e : Cluster.Membership.entry) ->
                        e.Cluster.Membership.role <> "")
                      entries)) );
            ( "ring",
              Json.Obj
                [
                  ("vnodes", Json.Int vnodes);
                  ( "nodes",
                    Json.List
                      (List.map
                         (fun n -> Json.Str n)
                         (Cluster.Ring.nodes ring)) );
                ] );
            ("affinity", Json.Obj (List.sort compare rows));
            ("affinity_consistent", Json.Bool all_ok);
          ],
        all_ok,
        (* nodes the schedule actually sent keyed (cacheable) work to —
           a small mix can leave a shard legitimately cold *)
        Hashtbl.fold
          (fun (node, _) _ acc -> if List.mem node acc then acc else node :: acc)
          expected [] )

(* Per-shard cache hits from the gossip-cluster-stats/1 envelope:
   [(node, alive, hits)] for every shard that answered. *)
let cluster_cache_hits stats =
  match stats with
  | None -> []
  | Some s -> (
      match Json.member "shards" s with
      | Some (Json.List items) ->
          List.filter_map
            (fun item ->
              match (Json.member "node" item, Json.member "status" item) with
              | Some (Json.Str node), Some (Json.Str status) ->
                  let hits =
                    Option.bind (Json.member "stats" item) (fun st ->
                        Option.bind (Json.member "cache" st) (fun c ->
                            Option.bind (Json.member "hits" c) Json.to_int_opt))
                  in
                  Some (node, status = "alive", hits)
              | _ -> None)
            items
      | _ -> [])

let () =
  let args = parse_args () in
  let tally =
    {
      ok = 0;
      protocol_errors = 0;
      gave_ups = 0;
      by_code = Hashtbl.create 8;
      by_op = Hashtbl.create 8;
      latencies_ms = [];
      traced = [];
      r_attempts = 0;
      r_retries = 0;
      r_reconnects = 0;
      r_stale_dropped = 0;
      r_garbled = 0;
      mu = Mutex.create ();
    }
  in
  let per_conn = args.requests / args.connections in
  let extra = args.requests mod args.connections in
  let run_one =
    if args.chaos_tolerant then run_connection_resilient else run_connection
  in
  let resource_start = Gossip_util.Resource.sample () in
  let t_start = now_s () in
  let threads =
    List.init args.connections (fun c ->
        let count = per_conn + if c < extra then 1 else 0 in
        let first = (c * per_conn) + min c extra in
        Thread.create
          (fun () -> run_one args tally ~conn_index:c ~first ~count)
          ())
  in
  List.iter Thread.join threads;
  let duration = now_s () -. t_start in
  let stats = fetch_op args Serve.Wire.Stats in
  let server_metrics = fetch_op args Serve.Wire.Metrics in
  let server_health = fetch_op args Serve.Wire.Health in
  (* --expect-healthy allows the storm to settle: a panic on one of the
     last requests leaves the pool briefly incomplete until the
     supervisor's next heartbeat respawns the worker. *)
  let server_health =
    if not args.expect_healthy then server_health
    else begin
      let deadline = now_s () +. 5.0 in
      let is_ok h =
        Option.bind h (fun h -> Json.member "status" h)
        = Some (Json.Str "ok")
      in
      let rec settle h =
        if is_ok h || now_s () > deadline then h
        else begin
          Thread.delay 0.2;
          settle (fetch_op args Serve.Wire.Health)
        end
      in
      settle server_health
    end
  in
  (* In cluster mode the snapshots are fleet envelopes; the process-level
     invariants (totals cross-check, worker_restarts) read the router's
     own section — every measured request passed through the router. *)
  let router_metrics =
    if args.cluster then Option.bind server_metrics (Json.member "router")
    else server_metrics
  in
  let crosscheck_json, counts_consistent = crosscheck tally router_metrics in
  let cluster_json, affinity_consistent, keyed_nodes =
    if args.cluster then
      cluster_audit args ~stats ~metrics:server_metrics
    else (Json.Null, true, [])
  in
  let latencies = Array.of_list tally.latencies_ms in
  Array.sort compare latencies;
  let mean =
    if Array.length latencies = 0 then nan
    else Array.fold_left ( +. ) 0.0 latencies /. float_of_int (Array.length latencies)
  in
  let fin v = if Float.is_finite v then Json.Float v else Json.Null in
  let cache_hits =
    match stats with
    | Some s -> (
        match Json.member "cache" s with
        | Some c -> (
            match Json.member "hits" c with
            | Some (Json.Int h) -> Some h
            | _ -> None)
        | None -> None)
    | None -> None
  in
  let errors_by_code_total =
    Hashtbl.fold (fun _ v acc -> acc + v) tally.by_code 0
  in
  let unaccounted =
    args.requests - tally.ok - errors_by_code_total - tally.protocol_errors
    - tally.gave_ups
  in
  let worker_restarts =
    Option.bind router_metrics (fun m ->
        Option.bind (Json.member "gauges" m) (fun g ->
            Option.bind (Json.member "worker_restarts" g) Json.to_int_opt))
  in
  (* the exemplar table: worst sampled requests with the trace ids to
     look them up in a stitched trace_report *)
  let slowest_traced =
    List.sort (fun (a, _, _) (b, _, _) -> compare b a) tally.traced
    |> List.filteri (fun i _ -> i < 5)
  in
  let report =
    Json.Obj
      [
        ("schema", Json.Str "gossip-loadgen/1");
        ("version", Json.Str Core.Version.string);
        ( "target",
          Json.Str
            (match args.target with
            | Serve.Server.Unix_socket p -> "unix:" ^ p
            | Serve.Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p) );
        ("connections", Json.Int args.connections);
        ("requests", Json.Int args.requests);
        ("ok", Json.Int tally.ok);
        ("protocol_errors", Json.Int tally.protocol_errors);
        ("gave_ups", Json.Int tally.gave_ups);
        ("unaccounted", Json.Int unaccounted);
        ("chaos_tolerant", Json.Bool args.chaos_tolerant);
        ( "resilience",
          if args.chaos_tolerant then
            Json.Obj
              [
                ("attempts", Json.Int tally.r_attempts);
                ("retries", Json.Int tally.r_retries);
                ("reconnects", Json.Int tally.r_reconnects);
                ("stale_dropped", Json.Int tally.r_stale_dropped);
                ("garbled", Json.Int tally.r_garbled);
              ]
          else Json.Null );
        ( "errors_by_code",
          Json.Obj
            (List.sort compare
               (Hashtbl.fold
                  (fun k v acc -> (k, Json.Int v) :: acc)
                  tally.by_code [])) );
        ("duration_seconds", Json.Float duration);
        ( "throughput_rps",
          fin (float_of_int args.requests /. Float.max duration 1e-9) );
        ( "latency_ms",
          Json.Obj
            [
              ("mean", fin mean);
              ("p50", fin (quantile latencies 0.50));
              ("p95", fin (quantile latencies 0.95));
              ("p99", fin (quantile latencies 0.99));
              ( "max",
                if Array.length latencies = 0 then Json.Null
                else fin latencies.(Array.length latencies - 1) );
            ] );
        ( "by_op",
          Json.Obj
            (List.sort compare
               (Hashtbl.fold
                  (fun name (count, sum) acc ->
                    ( name,
                      Json.Obj
                        [
                          ("count", Json.Int count);
                          ("mean_ms", fin (sum /. float_of_int count));
                        ] )
                    :: acc)
                  tally.by_op [])) );
        ("trace_sample_rate", Json.Float args.trace_sample_rate);
        ( "slowest_traces",
          Json.List
            (List.map
               (fun (ms, op, tid) ->
                 Json.Obj
                   [
                     ("trace_id", Json.Str tid);
                     ("op", Json.Str op);
                     ("latency_ms", fin ms);
                   ])
               slowest_traced) );
        ( "server_stats",
          match stats with Some s -> s | None -> Json.Null );
        ( "server_health",
          match server_health with Some h -> h | None -> Json.Null );
        (* client-side GC/RSS next to the server's resource section, so
           one artifact answers "who paid for this storm" *)
        ( "client_resource",
          let final = Gossip_util.Resource.sample () in
          Json.Obj
            [
              ("final", Gossip_util.Resource.to_json final);
              ( "delta",
                Gossip_util.Resource.delta_json ~before:resource_start
                  ~after:final );
            ] );
        ("metrics_crosscheck", crosscheck_json);
        ("cluster", cluster_json);
      ]
  in
  let rendered = Json.to_string_pretty report ^ "\n" in
  (match args.report with
  | Some path ->
      let oc = open_out path in
      output_string oc rendered;
      close_out oc;
      Printf.printf "loadgen report written to %s\n" path
  | None -> print_string rendered);
  if slowest_traced <> [] then begin
    Printf.printf "slowest sampled requests (trace ids for trace_report):\n";
    List.iter
      (fun (ms, op, tid) ->
        Printf.printf "  %10.3f ms  %-10s trace_id=%s\n" ms op tid)
      slowest_traced
  end;
  if tally.protocol_errors > 0 then begin
    Printf.eprintf "loadgen: %d protocol errors\n%!" tally.protocol_errors;
    exit 1
  end;
  if unaccounted <> 0 then begin
    Printf.eprintf "loadgen: %d requests unaccounted for (silent loss!)\n%!"
      unaccounted;
    exit 1
  end;
  (* only meaningful on a clean run: a dropped reply already explains a
     low client count *)
  if not counts_consistent then begin
    prerr_endline
      "loadgen: metrics cross-check failed: server-side op counts below \
       client-side";
    exit 1
  end;
  if args.expect_healthy then begin
    let status =
      Option.bind server_health (fun h ->
          Option.bind (Json.member "status" h) Json.to_string_opt)
    in
    match status with
    | Some "ok" -> ()
    | Some other ->
        Printf.eprintf "loadgen: --expect-healthy: server reports %S\n%!" other;
        exit 1
    | None ->
        prerr_endline "loadgen: --expect-healthy: could not read server health";
        exit 1
  end;
  if args.min_restarts > 0 then begin
    match worker_restarts with
    | Some n when n >= args.min_restarts -> ()
    | Some n ->
        Printf.eprintf
          "loadgen: --min-restarts: server reports %d worker restarts, \
           wanted >= %d\n\
           %!"
          n args.min_restarts;
        exit 1
    | None ->
        prerr_endline
          "loadgen: --min-restarts: could not read worker_restarts gauge";
        exit 1
  end;
  if args.require_cache_hits then begin
    if args.cluster then begin
      (* fingerprint affinity is only real if every live shard the
         schedule sent keyed work to absorbed its repeats in cache *)
      let per_shard = cluster_cache_hits stats in
      if per_shard = [] then begin
        prerr_endline
          "loadgen: --require-cache-hits: no shard stats in the cluster \
           envelope";
        exit 1
      end;
      List.iter
        (fun (node, alive, hits) ->
          match (alive && List.mem node keyed_nodes, hits) with
          | false, _ -> ()
          | true, Some h when h > 0 -> ()
          | true, _ ->
              Printf.eprintf
                "loadgen: --require-cache-hits: shard %s reports no cache \
                 hits\n\
                 %!"
                node;
              exit 1)
        per_shard
    end
    else
      match cache_hits with
      | Some h when h > 0 -> ()
      | Some _ ->
          prerr_endline "loadgen: --require-cache-hits: server reports 0 hits";
          exit 1
      | None ->
          prerr_endline
            "loadgen: --require-cache-hits: could not read server cache stats";
          exit 1
  end;
  if args.cluster && not affinity_consistent then begin
    prerr_endline
      "loadgen: cluster affinity audit failed: a live shard reported fewer \
       requests than its ring placement predicts";
    exit 1
  end
