(* perf_diff: compare two gossip-bench/1 reports — the regression gate.

   usage: perf_diff BASELINE CURRENT [--check] [--tolerance PCT]
                    [--min-seconds S] [--json PATH]

   Pairs the parts of the two reports by name and prints a delta table
   (wall seconds, delta %, per-part allocation delta from the embedded
   resource sections).  --json also writes the comparison as
   gossip-perf-diff/1.  --check turns any part slower than the
   tolerance (default 25%, over a baseline of at least --min-seconds,
   default 0.01s — faster parts are reported but never gate) into exit
   status 1.  CI runs this against the committed BENCH_BASELINE.json. *)

module Json = Gossip_util.Json
module PD = Gossip_util.Perf_diff

let usage () =
  prerr_endline
    "usage: perf_diff BASELINE CURRENT [--check] [--tolerance PCT] \
     [--min-seconds S] [--json PATH]";
  exit 2

let read_report path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg ->
      prerr_endline ("perf_diff: " ^ msg);
      exit 2
  | text -> (
      match Json.of_string text with
      | Ok j -> j
      | Error e ->
          Printf.eprintf "perf_diff: %s: %s\n" path e;
          exit 2)

let () =
  let files = ref []
  and check = ref false
  and tolerance = ref 25.0
  and min_seconds = ref 0.01
  and json_out = ref None in
  let float_arg s =
    match float_of_string_opt s with
    | Some v when v >= 0.0 -> v
    | _ -> usage ()
  in
  let rec go = function
    | [] -> ()
    | "--check" :: rest ->
        check := true;
        go rest
    | "--tolerance" :: pct :: rest ->
        tolerance := float_arg pct;
        go rest
    | "--min-seconds" :: s :: rest ->
        min_seconds := float_arg s;
        go rest
    | "--json" :: path :: rest ->
        json_out := Some path;
        go rest
    | arg :: rest when arg = "" || arg.[0] <> '-' ->
        files := arg :: !files;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  let base_path, cur_path =
    match List.rev !files with [ b; c ] -> (b, c) | _ -> usage ()
  in
  let base = read_report base_path and current = read_report cur_path in
  match PD.compare_reports ~base ~current with
  | Error e ->
      prerr_endline ("perf_diff: " ^ e);
      exit 2
  | Ok cmp ->
      print_string
        (PD.render ~tolerance_pct:!tolerance ~min_seconds:!min_seconds cmp);
      (match !json_out with
      | Some path ->
          let oc = open_out path in
          output_string oc
            (Json.to_string_pretty
               (PD.to_json ~tolerance_pct:!tolerance
                  ~min_seconds:!min_seconds cmp));
          output_char oc '\n';
          close_out oc;
          Printf.printf "JSON comparison written to %s\n" path
      | None -> ());
      if !check then
        match
          PD.check ~tolerance_pct:!tolerance ~min_seconds:!min_seconds cmp
        with
        | Ok () -> ()
        | Error lines ->
            List.iter (fun l -> prerr_endline ("perf_diff: REGRESSION " ^ l)) lines;
            exit 1
