(* trace_report: offline analysis of gossip_served/gossip_router JSONL
   traces — one file, or a whole fleet's files stitched together.

   usage: trace_report [FILE...] [--json PATH] [--check] [--top K]

   Reads every FILE (or stdin when none given, or "-"), reconstructs
   each request's critical path from its req_id-tagged spans and
   events, and prints a human-readable report: span aggregates,
   queue-wait vs service split, per-op latency breakdown and the
   slowest requests with their span waterfalls.  When the traces carry
   distributed contexts, multiple FILEs stitch into end-to-end traces:
   parent linkage, per-node-pair clock offsets, router-hop overhead and
   cross-node waterfalls.  --json also writes the report as
   gossip-trace-report/2 JSON (schema in doc/telemetry.md).

   --check turns trace defects into exit status 1: unbalanced
   span_begin/span_end counts, admitted requests with no serve.request
   span, fewer than 99% of request ids reconstructed, parent-span
   linkage under 95%, or any orphan router.forward hop.  CI runs this
   over the loadgen trace and over the merged cluster-soak trace. *)

module TA = Gossip_serve.Trace_analysis

let usage () =
  prerr_endline
    "usage: trace_report [FILE...] [--json PATH] [--check] [--top K]";
  exit 2

let () =
  let files = ref []
  and json_out = ref None
  and check = ref false
  and top = ref 10 in
  let rec go = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json_out := Some path;
        go rest
    | "--check" :: rest ->
        check := true;
        go rest
    | "--top" :: k :: rest ->
        (match int_of_string_opt k with
        | Some v when v >= 0 -> top := v
        | _ -> usage ());
        go rest
    | arg :: rest when arg = "-" || arg.[0] <> '-' ->
        files := arg :: !files;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  let t =
    match List.rev !files with
    | [] | [ "-" ] -> TA.of_channel stdin
    | paths -> (
        if List.mem "-" paths then usage ();
        match TA.of_files paths with
        | exception Sys_error msg ->
            prerr_endline ("trace_report: " ^ msg);
            exit 2
        | t -> t)
  in
  Format.printf "%a@?" (TA.pp ~top_k:!top) t;
  (match !json_out with
  | Some path ->
      let oc = open_out path in
      output_string oc
        (Gossip_util.Json.to_string_pretty (TA.to_json ~top_k:!top t));
      output_char oc '\n';
      close_out oc;
      Printf.printf "JSON report written to %s\n" path
  | None -> ());
  if !check then
    match TA.problems t with
    | [] -> ()
    | ps ->
        List.iter (fun p -> prerr_endline ("trace_report: " ^ p)) ps;
        exit 1
